#include <gtest/gtest.h>

#include <limits>

#include "net/shortest_paths.hpp"
#include "test_helpers.hpp"

namespace dosc::net {
namespace {

TEST(ShortestPaths, LineDistances) {
  const Network n = test::line3(10.0, 2.0);
  const ShortestPaths sp(n);
  EXPECT_DOUBLE_EQ(sp.delay(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(sp.delay(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(sp.delay(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(sp.delay(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(sp.diameter(), 4.0);
}

TEST(ShortestPaths, NextHopAndPath) {
  const Network n = test::line3();
  const ShortestPaths sp(n);
  EXPECT_EQ(sp.next_hop(0, 2), 1u);
  EXPECT_EQ(sp.next_hop(1, 2), 2u);
  EXPECT_EQ(sp.next_hop(0, 0), kInvalidNode);
  const auto path = sp.path(0, 2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 2u);
}

TEST(ShortestPaths, PicksCheaperRouteInDiamond) {
  // A-B-D costs 4, A-C-D costs 6.
  const Network n = test::diamond();
  const ShortestPaths sp(n);
  EXPECT_DOUBLE_EQ(sp.delay(0, 3), 4.0);
  EXPECT_EQ(sp.next_hop(0, 3), 1u);
}

TEST(ShortestPaths, EqualCostTieBreakDeterministic) {
  // Two equal-cost 2-hop routes A->D; the tie must break to the lower id.
  NetworkBuilder b("tie");
  for (int i = 0; i < 4; ++i) b.add_node("n" + std::to_string(i));
  b.add_link(0, 1, 1.0, 1.0);
  b.add_link(1, 3, 1.0, 1.0);
  b.add_link(0, 2, 1.0, 1.0);
  b.add_link(2, 3, 1.0, 1.0);
  const Network n = std::move(b).build();
  const ShortestPaths sp(n);
  EXPECT_DOUBLE_EQ(sp.delay(0, 3), 2.0);
  EXPECT_EQ(sp.next_hop(0, 3), 1u);
}

TEST(ShortestPaths, UnreachableIsInfinite) {
  NetworkBuilder b("disc");
  for (int i = 0; i < 4; ++i) b.add_node("n" + std::to_string(i));
  b.add_link(0, 1, 1.0, 1.0);
  b.add_link(2, 3, 1.0, 1.0);
  const Network n = std::move(b).build();
  const ShortestPaths sp(n);
  EXPECT_EQ(sp.delay(0, 2), std::numeric_limits<double>::infinity());
  EXPECT_EQ(sp.next_hop(0, 2), kInvalidNode);
  EXPECT_TRUE(sp.path(0, 2).empty());
  // Diameter ignores unreachable pairs.
  EXPECT_DOUBLE_EQ(sp.diameter(), 1.0);
}

TEST(ShortestPaths, DelayVia) {
  const Network n = test::diamond();
  const ShortestPaths sp(n);
  // From A via neighbour B to D: link(A,B)=2 + delay(B,D)=2.
  const auto& neighbors = n.neighbors(0);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].node, 1u);
  EXPECT_DOUBLE_EQ(sp.delay_via(0, neighbors[0], 3), 4.0);
  EXPECT_DOUBLE_EQ(sp.delay_via(0, neighbors[1], 3), 6.0);
  // Going "backwards" via B towards A itself: 2 + 0 ... from node 3.
  const auto& nb3 = n.neighbors(3);
  EXPECT_DOUBLE_EQ(sp.delay_via(3, nb3[0], 1), 2.0);
}

TEST(ShortestPaths, SymmetricOnUndirectedGraph) {
  const Network n = test::diamond();
  const ShortestPaths sp(n);
  for (NodeId u = 0; u < n.num_nodes(); ++u) {
    for (NodeId v = 0; v < n.num_nodes(); ++v) {
      EXPECT_DOUBLE_EQ(sp.delay(u, v), sp.delay(v, u));
    }
  }
}

TEST(ShortestPaths, PathDelaysAreConsistent) {
  // Property: walking the reported path and summing link delays must give
  // exactly the reported distance.
  const Network n = test::diamond();
  const ShortestPaths sp(n);
  for (NodeId u = 0; u < n.num_nodes(); ++u) {
    for (NodeId v = 0; v < n.num_nodes(); ++v) {
      const auto path = sp.path(u, v);
      if (u == v) continue;
      double sum = 0.0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto link = n.find_link(path[i], path[i + 1]);
        ASSERT_TRUE(link.has_value());
        sum += n.link(*link).delay;
      }
      EXPECT_DOUBLE_EQ(sum, sp.delay(u, v));
    }
  }
}

}  // namespace
}  // namespace dosc::net
