#include <gtest/gtest.h>

#include "baselines/gcasp.hpp"
#include "baselines/shortest_path.hpp"
#include "check/auditor.hpp"
#include "check/differential.hpp"
#include "check/digest.hpp"
#include "check/fuzzer.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace dosc::check {
namespace {

/// Run one audited episode; returns the auditor for inspection.
template <typename Coordinator>
std::pair<sim::SimMetrics, std::uint64_t> audited(const sim::Scenario& scenario,
                                                  std::uint64_t seed, InvariantAuditor& auditor,
                                                  EventDigest* digest = nullptr) {
  sim::Simulator sim(scenario, seed);
  HookChain hooks{&auditor};
  if (digest != nullptr) hooks.add(digest);
  sim.set_audit_hook(&hooks);
  Coordinator coordinator;
  const sim::SimMetrics m = sim.run(coordinator, &auditor);
  return {m, digest != nullptr ? digest->digest() : 0};
}

TEST(InvariantAuditor, CleanOnBaseScenario) {
  const sim::Scenario scenario = sim::make_base_scenario(3).with_end_time(2000.0);
  InvariantAuditor auditor;
  const auto [metrics, _] = audited<baselines::ShortestPathCoordinator>(scenario, 7, auditor);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  EXPECT_GT(auditor.events_audited(), metrics.generated);
  EXPECT_EQ(auditor.completions_seen(), metrics.succeeded);
  EXPECT_EQ(auditor.drops_seen(), metrics.dropped);
  EXPECT_GT(metrics.generated, 0u);
}

TEST(InvariantAuditor, CleanWithStartupDelaysAndIdleTimeouts) {
  // Startup delay + short idle timeout exercise the instance lifecycle
  // checks (creation ready_time, idle-removal legality) on every event.
  const sim::Scenario scenario = test::tiny_scenario(
      test::line3(), test::one_component_catalog(5.0, /*startup=*/3.0, /*idle=*/12.0),
      {.ingress = {0}, .egress = 2, .end_time = 400.0, .interarrival = 7.0});
  InvariantAuditor auditor;
  const auto [metrics, _] = audited<baselines::GcaspCoordinator>(scenario, 11, auditor);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  EXPECT_EQ(metrics.generated, metrics.succeeded + metrics.dropped);
}

TEST(InvariantAuditor, DetectsOutOfOrderEventStream) {
  // Feed the auditor a crafted stream directly: time running backwards and
  // a seq tie-break violation must both be flagged.
  const sim::Scenario scenario = sim::make_base_scenario(2);
  sim::Simulator sim(scenario, 1);  // never run; provides consistent state
  InvariantAuditor auditor;
  auditor.on_episode_start(sim);
  auditor.on_event(sim, {.time = 5.0, .seq = 10, .kind = sim::EventKind::kPeriodic});
  auditor.on_event(sim, {.time = 3.0, .seq = 11, .kind = sim::EventKind::kPeriodic});
  auditor.on_event(sim, {.time = 3.0, .seq = 11, .kind = sim::EventKind::kPeriodic});
  EXPECT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.total_violations(), 2u);
  EXPECT_NE(auditor.report().find("backwards"), std::string::npos);
  EXPECT_NE(auditor.report().find("out of scheduling order"), std::string::npos);
}

TEST(EventDigest, ReproducibleAndSeedSensitive) {
  const sim::Scenario scenario = sim::make_base_scenario(2).with_end_time(1000.0);
  InvariantAuditor a1, a2, a3;
  EventDigest d1, d2, d3;
  const auto [m1, h1] = audited<baselines::ShortestPathCoordinator>(scenario, 3, a1, &d1);
  const auto [m2, h2] = audited<baselines::ShortestPathCoordinator>(scenario, 3, a2, &d2);
  const auto [m3, h3] = audited<baselines::ShortestPathCoordinator>(scenario, 4, a3, &d3);
  // Same (scenario, seed, coordinator) => bit-identical stream.
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(d1.events(), d2.events());
  EXPECT_GT(d1.events(), 0u);
  // A different episode seed changes traffic, hence the stream.
  EXPECT_NE(h1, h3);
  EXPECT_EQ(m1.generated, m2.generated);
}

TEST(EventDigest, DistinguishesCoordinators) {
  // Co-located ingress load on Abilene: SP and GCASP route differently, so
  // their event streams (and digests) must differ.
  const sim::Scenario scenario = sim::make_base_scenario(5).with_end_time(1500.0);
  InvariantAuditor a1, a2;
  EventDigest d1, d2;
  const auto [m1, h1] = audited<baselines::ShortestPathCoordinator>(scenario, 7, a1, &d1);
  const auto [m2, h2] = audited<baselines::GcaspCoordinator>(scenario, 7, a2, &d2);
  EXPECT_NE(h1, h2);
  // ... while the decision-independent traffic stream stays identical.
  EXPECT_EQ(m1.generated, m2.generated);
}

TEST(HookChain, FansOutToAllHooks) {
  const sim::Scenario scenario = sim::make_base_scenario(2);
  sim::Simulator sim(scenario, 1);
  EventDigest a, b;
  HookChain chain{&a};
  chain.add(&b);
  chain.on_episode_start(sim);
  chain.on_event(sim, {.time = 1.0, .seq = 1, .kind = sim::EventKind::kTrafficArrival});
  chain.on_episode_end(sim);
  EXPECT_EQ(a.events(), 1u);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), EventDigest{}.digest());
}

TEST(ScenarioFuzzer, DeterministicAndValid) {
  const ScenarioFuzzer fuzzer;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const sim::Scenario one = fuzzer.make(seed);
    const sim::Scenario two = fuzzer.make(seed);
    EXPECT_EQ(one.config().to_json().dump(), two.config().to_json().dump());
    EXPECT_GE(one.network().num_nodes(), fuzzer.bounds().min_nodes);
    EXPECT_LE(one.network().num_nodes(), fuzzer.bounds().max_nodes);
    EXPECT_TRUE(one.network().connected());
    EXPECT_GE(one.catalog().num_services(), 1u);
    for (const net::NodeId ingress : one.config().ingress) {
      EXPECT_NE(ingress, one.config().egress);
    }
  }
  // Different fuzz seeds produce different scenarios.
  EXPECT_NE(fuzzer.make(0).config().to_json().dump(),
            fuzzer.make(1).config().to_json().dump());
}

TEST(Differential, AllCoordinatorsConsistentOnBaseScenario) {
  const sim::Scenario scenario = sim::make_base_scenario(2).with_end_time(800.0);
  const DifferentialResult result = run_differential(scenario);
  ASSERT_EQ(result.runs.size(), 4u);
  EXPECT_TRUE(result.ok()) << result.report();
  for (const CoordinatorRun& run : result.runs) {
    EXPECT_EQ(run.metrics.generated, result.runs.front().metrics.generated);
    EXPECT_GT(run.events, 0u);
  }
}

}  // namespace
}  // namespace dosc::check
