// util::SpscQueue: single-producer single-consumer bounded ring. Unit tests
// pin the bounded-FIFO contract (order, capacity, failed-push leaves the
// value intact, move-only payloads); the two-thread stress is the TSan
// workload for the lock-free index protocol.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/spsc_queue.hpp"

using dosc::util::SpscQueue;

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(9).capacity(), 16u);
  EXPECT_EQ(SpscQueue<int>(0).capacity(), 2u);
}

TEST(SpscQueue, FifoOrderAndEmptyPop) {
  SpscQueue<int> queue(4);
  int out = -1;
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_TRUE(queue.empty_approx());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(int{i}));
  EXPECT_EQ(queue.size_approx(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(SpscQueue, FullQueueRejectsPushAndKeepsValueIntact) {
  SpscQueue<std::string> queue(2);
  std::string a = "first";
  std::string b = "second";
  std::string c = "third";
  EXPECT_TRUE(queue.try_push(a));
  EXPECT_TRUE(queue.try_push(b));
  // Failed push must not consume the value — the caller retries with it.
  EXPECT_FALSE(queue.try_push(c));
  EXPECT_EQ(c, "third");
  std::string out;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, "first");
  EXPECT_TRUE(queue.try_push(c));
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, "second");
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, "third");
}

TEST(SpscQueue, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> queue(2);
  EXPECT_TRUE(queue.try_push(std::make_unique<int>(5)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 5);
}

TEST(SpscQueue, WrapsAroundManyTimes) {
  SpscQueue<std::uint64_t> queue(4);
  std::uint64_t expected = 0;
  std::uint64_t next = 0;
  for (int round = 0; round < 1000; ++round) {
    while (queue.try_push(std::uint64_t{next})) ++next;
    std::uint64_t out = 0;
    while (queue.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    }
  }
  EXPECT_EQ(expected, next);
  EXPECT_GT(next, 1000u);
}

TEST(SpscQueue, TwoThreadStressPreservesOrderAndLosesNothing) {
  // The concurrency workload: one producer, one consumer, a small ring so
  // both full and empty edges are exercised constantly. Run under TSan in
  // CI; single-threaded machines still interleave via preemption.
  constexpr std::uint64_t kItems = 200000;
  SpscQueue<std::uint64_t> queue(8);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!queue.try_push(std::uint64_t{i})) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kItems) {
    std::uint64_t out = 0;
    if (queue.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(queue.empty_approx());
}
