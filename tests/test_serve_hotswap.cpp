// Policy hot-swap safety at the server level: a serving UdpServer mid-load
// must swap policies with zero dropped requests, and an incompatible
// snapshot must be rejected without disturbing the serving one. The
// underlying EpochPublished mechanism is covered by test_epoch_published
// (it moved to src/util when the async trainer started sharing it).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/daemon.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "sim/scenario.hpp"

using namespace dosc;

TEST(ServeHotswap, ServerSwapsMidLoadWithZeroDroppedRequests) {
  const sim::Scenario scenario = sim::make_base_scenario();
  const core::TrainedPolicy policy = serve::make_untrained_policy(scenario, 16, 5);

  serve::ServerConfig config;
  config.threads = 2;
  serve::UdpServer server(scenario, policy, config);
  server.start();

  // Publisher: hot-swap as fast as the store allows while the load runs.
  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    std::uint64_t swaps = 0;
    while (!stop_swapping.load(std::memory_order_acquire)) {
      server.publish(serve::make_untrained_policy(scenario, 16, 100 + swaps));
      ++swaps;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  serve::LoadConfig load;
  load.port = server.port();
  load.rate = 20000.0;
  load.seed = 3;
  load.drain_timeout_ms = 2000;
  const std::vector<serve::wire::Request> requests =
      serve::make_request_mix(scenario, 30000, load.seed);
  const serve::LoadReport report = serve::run_load(requests, load);

  stop_swapping.store(true, std::memory_order_release);
  swapper.join();
  server.stop();

  EXPECT_EQ(report.sent, requests.size());
  // Zero dropped: every request got a reply even though the policy was
  // being swapped throughout the run.
  EXPECT_EQ(report.received, report.sent);
  EXPECT_EQ(report.server_errors, 0u);
  // The run actually spanned a swap (many, at ~2 ms cadence over >1 s).
  EXPECT_GT(report.policy_versions.size(), 1u);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.requests, stats.responses);
  EXPECT_GT(stats.hot_swaps, 0u);
}

TEST(ServeHotswap, PublishRejectsIncompatibleLayoutAndKeepsServing) {
  const sim::Scenario scenario = sim::make_base_scenario();
  const core::TrainedPolicy policy = serve::make_untrained_policy(scenario, 16, 5);
  serve::UdpServer server(scenario, policy, {});

  core::TrainedPolicy wrong = policy;
  wrong.max_degree += 1;  // different padded layout than the serving one
  EXPECT_THROW(server.publish(wrong), std::runtime_error);
  EXPECT_EQ(server.stats().policy_version, 1u);
  EXPECT_EQ(server.stats().hot_swaps, 0u);

  // A compatible snapshot still goes through afterwards.
  server.publish(serve::make_untrained_policy(scenario, 16, 6));
  EXPECT_EQ(server.stats().policy_version, 2u);
}
