// Policy hot-swap safety: concurrent readers through EpochPublished must
// never observe a torn snapshot while a publisher loops, and a serving
// UdpServer mid-load-test must swap policies with zero dropped requests.
//
// The torn-read detector uses per-snapshot sentinel values: every publish
// installs a large vector whose elements all equal the publish index, so a
// reader that ever sees two different elements has caught a tear — a
// mixed-generation snapshot — which the epoch protocol promises cannot
// happen.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "serve/daemon.hpp"
#include "serve/loadgen.hpp"
#include "serve/policy_store.hpp"
#include "serve/server.hpp"
#include "sim/scenario.hpp"

using namespace dosc;
using serve::EpochPublished;

TEST(ServeHotswap, ConcurrentReadersNeverSeeTornSnapshots) {
  EpochPublished<std::vector<double>> store;
  store.publish(std::make_unique<std::vector<double>>(4096, 0.0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> stale{0};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      double last_seen = -1.0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto handle = store.acquire();
        ASSERT_TRUE(handle);
        const std::vector<double>& v = *handle;
        const double first = v[0];
        for (const double x : v) {
          if (x != first) {
            torn.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        // Published generations are monotone; a reader may lag by an
        // in-flight publish but must never travel backwards.
        if (first < last_seen) stale.fetch_add(1, std::memory_order_relaxed);
        last_seen = first;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Interleave publishes with reader progress: on a single hardware thread
  // the publisher can otherwise retire every publish before a reader is
  // ever scheduled, and an unobserved publish storm verifies nothing.
  constexpr std::uint64_t kPublishes = 2000;
  for (std::uint64_t gen = 1; gen <= kPublishes; ++gen) {
    const std::uint64_t reads_before = reads.load(std::memory_order_relaxed);
    store.publish(
        std::make_unique<std::vector<double>>(4096, static_cast<double>(gen)));
    if (gen % 16 == 0) {
      while (reads.load(std::memory_order_relaxed) == reads_before) {
        std::this_thread::yield();
      }
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(stale.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(store.publish_count(), kPublishes + 1);
  EXPECT_EQ((*store.acquire())[0], static_cast<double>(kPublishes));
}

TEST(ServeHotswap, HandlePinsItsSnapshotAcrossPublishes) {
  EpochPublished<std::vector<double>> store;
  store.publish(std::make_unique<std::vector<double>>(16, 7.0));

  const auto pinned = store.acquire();
  // Up to kSlots - 1 further publishes can proceed without recycling the
  // pinned slot; the pinned view must stay bit-identical throughout.
  for (std::size_t i = 0; i < EpochPublished<std::vector<double>>::kSlots - 1; ++i) {
    store.publish(std::make_unique<std::vector<double>>(16, 100.0 + static_cast<double>(i)));
    EXPECT_EQ((*pinned)[0], 7.0);
    EXPECT_EQ((*pinned)[15], 7.0);
  }
  EXPECT_NE((*store.acquire())[0], 7.0);
}

TEST(ServeHotswap, AcquireBeforeFirstPublishIsNull) {
  EpochPublished<int> store;
  EXPECT_FALSE(store.acquire());
  store.publish(std::make_unique<int>(42));
  ASSERT_TRUE(store.acquire());
  EXPECT_EQ(*store.acquire(), 42);
}

TEST(ServeHotswap, ServerSwapsMidLoadWithZeroDroppedRequests) {
  const sim::Scenario scenario = sim::make_base_scenario();
  const core::TrainedPolicy policy = serve::make_untrained_policy(scenario, 16, 5);

  serve::ServerConfig config;
  config.threads = 2;
  serve::UdpServer server(scenario, policy, config);
  server.start();

  // Publisher: hot-swap as fast as the store allows while the load runs.
  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    std::uint64_t swaps = 0;
    while (!stop_swapping.load(std::memory_order_acquire)) {
      server.publish(serve::make_untrained_policy(scenario, 16, 100 + swaps));
      ++swaps;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  serve::LoadConfig load;
  load.port = server.port();
  load.rate = 20000.0;
  load.seed = 3;
  load.drain_timeout_ms = 2000;
  const std::vector<serve::wire::Request> requests =
      serve::make_request_mix(scenario, 30000, load.seed);
  const serve::LoadReport report = serve::run_load(requests, load);

  stop_swapping.store(true, std::memory_order_release);
  swapper.join();
  server.stop();

  EXPECT_EQ(report.sent, requests.size());
  // Zero dropped: every request got a reply even though the policy was
  // being swapped throughout the run.
  EXPECT_EQ(report.received, report.sent);
  EXPECT_EQ(report.server_errors, 0u);
  // The run actually spanned a swap (many, at ~2 ms cadence over >1 s).
  EXPECT_GT(report.policy_versions.size(), 1u);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.requests, stats.responses);
  EXPECT_GT(stats.hot_swaps, 0u);
}

TEST(ServeHotswap, PublishRejectsIncompatibleLayoutAndKeepsServing) {
  const sim::Scenario scenario = sim::make_base_scenario();
  const core::TrainedPolicy policy = serve::make_untrained_policy(scenario, 16, 5);
  serve::UdpServer server(scenario, policy, {});

  core::TrainedPolicy wrong = policy;
  wrong.max_degree += 1;  // different padded layout than the serving one
  EXPECT_THROW(server.publish(wrong), std::runtime_error);
  EXPECT_EQ(server.stats().policy_version, 1u);
  EXPECT_EQ(server.stats().hot_swaps, 0u);

  // A compatible snapshot still goes through afterwards.
  server.publish(serve::make_untrained_policy(scenario, 16, 6));
  EXPECT_EQ(server.stats().policy_version, 2u);
}
