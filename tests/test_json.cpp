#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/json.hpp"

namespace dosc::util {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(Json::parse("\"hello\"").as_string(), "hello");
}

TEST(Json, ParseNested) {
  const Json doc = Json::parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a").at(1).as_number(), 2.0);
  EXPECT_TRUE(doc.at("a").at(2).at("b").as_bool());
  EXPECT_TRUE(doc.at("c").at("d").is_null());
}

TEST(Json, StringEscapes) {
  const Json doc = Json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(doc.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, WhitespaceTolerant) {
  const Json doc = Json::parse("  {\n\t\"x\" :\r [ ] }  ");
  EXPECT_TRUE(doc.at("x").is_array());
  EXPECT_EQ(doc.at("x").size(), 0u);
}

TEST(Json, ErrorsThrow) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
}

TEST(Json, TypeErrorsThrow) {
  const Json doc = Json::parse("{\"a\": 1}");
  EXPECT_THROW(doc.at("a").as_string(), JsonError);
  EXPECT_THROW(doc.at("missing"), JsonError);
  EXPECT_THROW(doc.at("a").at("nested"), JsonError);
  EXPECT_THROW(doc.at(std::size_t{0}), JsonError);
}

TEST(Json, Accessors) {
  const Json doc = Json::parse(R"({"n": 2.5, "s": "x", "b": true})");
  EXPECT_DOUBLE_EQ(doc.number_or("n", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(doc.number_or("missing", 7.0), 7.0);
  EXPECT_EQ(doc.string_or("s", "d"), "x");
  EXPECT_EQ(doc.string_or("missing", "d"), "d");
  EXPECT_TRUE(doc.bool_or("b", false));
  EXPECT_TRUE(doc.bool_or("missing", true));
  EXPECT_TRUE(doc.contains("n"));
  EXPECT_FALSE(doc.contains("zzz"));
  EXPECT_EQ(doc.at("n").as_int(), 3);  // rounds
}

TEST(Json, DumpRoundTrip) {
  const char* text = R"({"arr":[1,2.5,"x",null,true],"obj":{"k":-7}})";
  const Json doc = Json::parse(text);
  const Json again = Json::parse(doc.dump());
  EXPECT_EQ(again.at("arr").size(), 5u);
  EXPECT_DOUBLE_EQ(again.at("obj").at("k").as_number(), -7.0);
  EXPECT_EQ(doc.dump(), again.dump());
}

TEST(Json, DumpIndented) {
  Json::Object o;
  o["a"] = Json(1);
  const std::string pretty = Json(std::move(o)).dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty).at("a").as_int(), 1);
}

TEST(Json, DumpEscapesControlCharacters) {
  const Json doc(std::string("a\"b\nc\x01"));
  const Json again = Json::parse(doc.dump());
  EXPECT_EQ(again.as_string(), "a\"b\nc\x01");
}

TEST(Json, IntegersStayExact) {
  EXPECT_EQ(Json(123456789).dump(), "123456789");
  EXPECT_EQ(Json(-5).dump(), "-5");
}

TEST(Json, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dosc_json_test.json").string();
  Json::Object o;
  o["value"] = Json(3.25);
  Json(std::move(o)).save_file(path);
  const Json loaded = Json::load_file(path);
  EXPECT_DOUBLE_EQ(loaded.at("value").as_number(), 3.25);
  std::remove(path.c_str());
  EXPECT_THROW(Json::load_file(path), JsonError);
}

}  // namespace
}  // namespace dosc::util
