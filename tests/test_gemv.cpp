// Tests for the batch-1 GEMV kernels behind Mlp::predict_row.
//
// The fast path's contract is stronger than approximate correctness: at the
// dispatched ISA level, predict_row is BIT-IDENTICAL to the batch forward
// (Mlp::predict), because both reduce each output element over the input
// dimension in ascending order with a single accumulator, add the bias once
// after the reduction, and apply the activation last. These tests therefore
// use exact floating-point equality throughout, across layer shapes that
// straddle the 32-wide panel edge, and verify the pack cache tracks weight
// mutation.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nn/gemv.hpp"
#include "nn/gemm.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/parallel.hpp"
#include "util/rng.hpp"

namespace dosc::nn {
namespace {

std::vector<double> random_vector(std::size_t n, util::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(0.0, 1.0);
  return v;
}

/// Count of elements that differ in their bit pattern.
std::size_t mismatches(const std::vector<double>& a, const double* b) {
  std::size_t bad = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) ++bad;
  }
  return bad;
}

void expect_row_matches_batch(const Mlp& net, std::span<const double> input) {
  Matrix x(1, input.size());
  std::copy(input.begin(), input.end(), x.data());
  const Matrix batch = net.predict(x);
  std::vector<double> row;
  Mlp::Scratch scratch;
  net.predict_row(input, row, scratch);
  ASSERT_EQ(row.size(), batch.cols());
  EXPECT_EQ(mismatches(row, batch.data()), 0u);
}

// Widths straddling the kPanelWidth = 32 panel edge in every way: below,
// at, just above, a multiple, and odd remainders; plus single-output heads.
const std::size_t kWidths[] = {1, 2, 5, 31, 32, 33, 64, 65, 100};

TEST(Gemv, PackedSizeRoundsUpToPanels) {
  EXPECT_EQ(gemv::packed_size(3, 1), 3u * 32u);
  EXPECT_EQ(gemv::packed_size(3, 32), 3u * 32u);
  EXPECT_EQ(gemv::packed_size(3, 33), 3u * 64u);
  EXPECT_EQ(gemv::packed_size(7, 100), 7u * 128u);
}

TEST(Gemv, BiasActMatchesUnpackedReference) {
  ComputeThreadsGuard guard(1);
  util::Rng rng(11);
  for (std::size_t in : kWidths) {
    for (std::size_t out : kWidths) {
      const std::vector<double> w = random_vector(in * out, rng);
      const std::vector<double> bias = random_vector(out, rng);
      const std::vector<double> x = random_vector(in, rng);
      gemv::AlignedBuffer packed;
      packed.resize(gemv::packed_size(in, out));
      gemv::pack(in, out, w.data(), packed.data());
      std::vector<double> y(out);
      gemv::bias_act(in, out, x.data(), packed.data(), bias.data(), /*linear*/ 0, y.data());
      // Reference: the batch-forward operation order at the same ISA —
      // matmul (ascending-k single accumulator), then bias.
      Matrix xm(1, in), wm(in, out);
      std::copy(x.begin(), x.end(), xm.data());
      std::copy(w.begin(), w.end(), wm.data());
      Matrix ref = matmul(xm, wm);
      for (std::size_t j = 0; j < out; ++j) ref.data()[j] += bias[j];
      EXPECT_EQ(mismatches(y, ref.data()), 0u) << in << "x" << out;
    }
  }
}

TEST(Gemv, PredictRowBitExactAgainstBatchForward) {
  util::Rng rng(42);
  for (std::size_t h : {5u, 31u, 33u, 64u, 256u}) {
    const Mlp net({13, h, h, 4}, Activation::kTanh, Activation::kLinear, 7);
    for (int trial = 0; trial < 5; ++trial) {
      expect_row_matches_batch(net, random_vector(13, rng));
    }
  }
}

TEST(Gemv, PredictRowBitExactForReluAndSingleOutput) {
  util::Rng rng(3);
  const Mlp relu({9, 40, 17}, Activation::kRelu, Activation::kLinear, 21);
  expect_row_matches_batch(relu, random_vector(9, rng));
  const Mlp head({6, 33, 1}, Activation::kTanh, Activation::kTanh, 22);
  expect_row_matches_batch(head, random_vector(6, rng));
}

TEST(Gemv, PredictRowInvariantUnderComputeThreads) {
  // The gemv path is single-threaded by design, but predict() runs through
  // the threaded GEMM — the equality must hold at any thread budget.
  util::Rng rng(5);
  const Mlp net({20, 64, 64, 6}, Activation::kTanh, Activation::kLinear, 1);
  const std::vector<double> x = random_vector(20, rng);
  std::vector<double> row;
  Mlp::Scratch scratch;
  net.predict_row(x, row, scratch);
  for (std::size_t threads : {1u, 2u, 4u}) {
    ComputeThreadsGuard guard(threads);
    Matrix xm(1, 20);
    std::copy(x.begin(), x.end(), xm.data());
    const Matrix batch = net.predict(xm);
    EXPECT_EQ(mismatches(row, batch.data()), 0u) << threads << " threads";
  }
}

TEST(Gemv, PackCacheInvalidatedByWeightMutation) {
  util::Rng rng(8);
  Mlp net({10, 33, 3}, Activation::kTanh, Activation::kLinear, 2);
  const std::vector<double> x = random_vector(10, rng);
  std::vector<double> before;
  Mlp::Scratch scratch;
  net.predict_row(x, before, scratch);  // packs

  // Mutation through the non-const layers() accessor (the optimizer path).
  net.layers()[0].weights.data()[0] += 0.5;
  expect_row_matches_batch(net, x);
  std::vector<double> after;
  net.predict_row(x, after, scratch);
  EXPECT_NE(before, after);

  // Mutation through set_parameters (the policy-deployment path).
  std::vector<double> params = net.get_parameters();
  for (double& p : params) p *= 0.9;
  net.set_parameters(params);
  expect_row_matches_batch(net, x);
}

TEST(Gemv, CopiedNetworkPacksIndependently) {
  util::Rng rng(9);
  Mlp net({8, 32, 2}, Activation::kTanh, Activation::kLinear, 4);
  const std::vector<double> x = random_vector(8, rng);
  std::vector<double> a, b;
  Mlp::Scratch scratch;
  net.predict_row(x, a, scratch);
  Mlp copy = net;
  copy.layers()[0].weights.data()[0] += 1.0;
  copy.predict_row(x, b, scratch);
  EXPECT_NE(a, b);
  // The original's cache is untouched by the copy's mutation.
  std::vector<double> again;
  net.predict_row(x, again, scratch);
  EXPECT_EQ(a, again);
}

TEST(Gemv, IsaDispatchAgreesWithGemm) {
  // gemv and gemm share one cpuid gate: mixing contraction modes between
  // the row and batch paths would break the bit-exactness contract.
  EXPECT_STREQ(gemv::isa_name(), gemm::isa_name());
}

TEST(Gemv, FlopAndCallCountersAdvance) {
  const std::uint64_t flops0 = gemv::flop_count();
  const std::uint64_t calls0 = gemv::call_count();
  util::Rng rng(12);
  const Mlp net({4, 8, 2}, Activation::kTanh, Activation::kLinear, 3);
  std::vector<double> out;
  Mlp::Scratch scratch;
  net.predict_row(random_vector(4, rng), out, scratch);
  EXPECT_EQ(gemv::call_count() - calls0, 2u);
  EXPECT_EQ(gemv::flop_count() - flops0, 2u * (4 * 8 + 8 * 2));
}

}  // namespace
}  // namespace dosc::nn
