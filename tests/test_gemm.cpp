// Tests for the tiled GEMM kernels behind the Matrix API.
//
// The kernels promise more than approximate correctness: every output
// element is reduced over k in ascending order by a single accumulator, so
// tiled results are BIT-IDENTICAL to the naive reference kernels (compiled
// at the same ISA level) and invariant under the compute-thread count.
// These tests therefore use exact floating-point equality throughout.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/matrix.hpp"
#include "nn/parallel.hpp"
#include "util/rng.hpp"

namespace dosc::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal(0.0, 1.0);
  return m;
}

/// Number of elements that are not bit-identical (counts, so a systematic
/// failure reports one number instead of thousands of EXPECT lines).
std::size_t mismatches(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return a.size() + b.size() + 1;
  std::size_t bad = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(double)) != 0) ++bad;
  }
  return bad;
}

// Shapes straddling every edge case of the 4x8 register tile and the packed
// panels: below/at/above the tile in each dimension, odd remainders, and a
// couple of sizes large enough to hit the multi-tile loops.
const std::size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 12, 13, 17, 31, 33};

TEST(Gemm, TiledMatchesReferenceExhaustively) {
  ComputeThreadsGuard guard(1);
  util::Rng rng(42);
  for (std::size_t m : kSizes) {
    for (std::size_t n : kSizes) {
      for (std::size_t k : kSizes) {
        const Matrix a = random_matrix(m, k, rng);
        const Matrix b = random_matrix(k, n, rng);
        EXPECT_EQ(mismatches(matmul(a, b), matmul_reference(a, b)), 0u)
            << "nn " << m << "x" << n << "x" << k;

        const Matrix at = random_matrix(k, m, rng);
        EXPECT_EQ(mismatches(matmul_tn(at, b), matmul_tn_reference(at, b)), 0u)
            << "tn " << m << "x" << n << "x" << k;

        const Matrix bt = random_matrix(n, k, rng);
        EXPECT_EQ(mismatches(matmul_nt(a, bt), matmul_nt_reference(a, bt)), 0u)
            << "nt " << m << "x" << n << "x" << k;
      }
    }
  }
}

TEST(Gemm, ThreadCountInvariance) {
  util::Rng rng(43);
  const std::size_t shapes[][3] = {{67, 45, 33}, {128, 64, 96}, {257, 129, 65}};
  for (const auto& s : shapes) {
    const Matrix a = random_matrix(s[0], s[2], rng);
    const Matrix b = random_matrix(s[2], s[1], rng);
    const Matrix at = random_matrix(s[2], s[0], rng);
    const Matrix bt = random_matrix(s[1], s[2], rng);
    Matrix c1, c4, tn1, tn4, nt1, nt4;
    {
      ComputeThreadsGuard guard(1);
      matmul_into(c1, a, b);
      matmul_tn_into(tn1, at, b);
      matmul_nt_into(nt1, a, bt);
    }
    {
      ComputeThreadsGuard guard(4);
      matmul_into(c4, a, b);
      matmul_tn_into(tn4, at, b);
      matmul_nt_into(nt4, a, bt);
    }
    EXPECT_EQ(mismatches(c1, c4), 0u) << "nn " << s[0] << "x" << s[1] << "x" << s[2];
    EXPECT_EQ(mismatches(tn1, tn4), 0u) << "tn " << s[0] << "x" << s[1] << "x" << s[2];
    EXPECT_EQ(mismatches(nt1, nt4), 0u) << "nt " << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(Gemm, GramMatchesFullTransposeProduct) {
  util::Rng rng(44);
  for (std::size_t m : {1u, 5u, 8u, 13u, 33u, 64u}) {
    for (std::size_t k : {1u, 7u, 32u, 101u}) {
      const Matrix a = random_matrix(k, m, rng);
      Matrix c(m, m);
      gemm::gram(m, k, a.data(), a.cols(), c.data(), c.cols());
      // Full triangle (mirror included) must be bit-identical to the
      // unrestricted A^T A.
      EXPECT_EQ(mismatches(c, matmul_tn(a, a)), 0u) << "gram " << m << "x" << k;
    }
  }
}

TEST(Gemm, AccumulateEqualsProductPlusAddition) {
  util::Rng rng(45);
  const Matrix a = random_matrix(29, 11, rng);
  const Matrix b = random_matrix(29, 19, rng);
  Matrix c = random_matrix(11, 19, rng);
  Matrix expected = c;
  const Matrix product = matmul_tn(a, b);
  for (std::size_t i = 0; i < expected.size(); ++i) expected.data()[i] += product.data()[i];
  matmul_tn_acc(c, a, b);
  EXPECT_EQ(mismatches(c, expected), 0u);
}

TEST(Gemm, IntoReusesDestinationAcrossShapes) {
  util::Rng rng(46);
  Matrix c;
  // Grow, shrink, regrow: the destination is reshaped in place each time
  // and the result must match a freshly allocated product.
  for (const auto& s : {std::pair<std::size_t, std::size_t>{24, 16}, {8, 4}, {33, 17}}) {
    const Matrix a = random_matrix(s.first, 21, rng);
    const Matrix b = random_matrix(21, s.second, rng);
    matmul_into(c, a, b);
    ASSERT_EQ(c.rows(), s.first);
    ASSERT_EQ(c.cols(), s.second);
    EXPECT_EQ(mismatches(c, matmul_reference(a, b)), 0u);
  }
}

TEST(Gemm, ShapeAndAliasErrors) {
  util::Rng rng(47);
  Matrix a = random_matrix(4, 3, rng);
  Matrix b = random_matrix(3, 5, rng);
  Matrix wrong = random_matrix(4, 5, rng);
  Matrix c;
  EXPECT_THROW(matmul_into(c, a, wrong), std::invalid_argument);
  EXPECT_THROW(matmul_tn_into(c, a, b), std::invalid_argument);
  EXPECT_THROW(matmul_nt_into(c, a, b), std::invalid_argument);
  EXPECT_THROW(matmul_into(a, a, b), std::invalid_argument);  // c aliases a
  Matrix acc(3, 4);  // wrong destination shape for tn_acc (wants 3x5)
  EXPECT_THROW(matmul_tn_acc(acc, a, b), std::invalid_argument);
}

TEST(Gemm, FlopCounterAdvances) {
  util::Rng rng(48);
  const Matrix a = random_matrix(16, 24, rng);
  const Matrix b = random_matrix(24, 8, rng);
  const std::uint64_t flops0 = gemm::flop_count();
  const std::uint64_t calls0 = gemm::call_count();
  (void)matmul(a, b);
  EXPECT_EQ(gemm::flop_count() - flops0, 2ull * 16 * 8 * 24);
  EXPECT_EQ(gemm::call_count() - calls0, 1u);
  EXPECT_TRUE(gemm::isa_name() != nullptr);
}

TEST(Parallel, ChunksCoverEveryIndexExactlyOnce) {
  ComputeThreadsGuard guard(4);
  for (std::size_t n : {0u, 1u, 3u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    parallel_chunks(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "n=" << n;
  }
}

TEST(Parallel, ForRowsPartitionIsAlignedAndComplete) {
  ComputeThreadsGuard guard(3);
  const std::size_t rows = 103;
  std::vector<std::atomic<int>> hits(rows);
  for (auto& h : hits) h.store(0);
  parallel_for_rows(rows, /*min_rows_per_chunk=*/4, /*align=*/4,
                    [&](std::size_t row0, std::size_t row1) {
                      EXPECT_EQ(row0 % 4, 0u);  // chunk starts stay tile-aligned
                      for (std::size_t r = row0; r < row1; ++r) hits[r].fetch_add(1);
                    });
  for (std::size_t r = 0; r < rows; ++r) EXPECT_EQ(hits[r].load(), 1) << "row " << r;
}

TEST(Parallel, GuardRestoresThreadCount) {
  const std::size_t before = compute_threads();
  {
    ComputeThreadsGuard guard(2);
    EXPECT_EQ(compute_threads(), 2u);
    {
      ComputeThreadsGuard inner(1);
      EXPECT_EQ(compute_threads(), 1u);
    }
    EXPECT_EQ(compute_threads(), 2u);
  }
  EXPECT_EQ(compute_threads(), before);
}

}  // namespace
}  // namespace dosc::nn
