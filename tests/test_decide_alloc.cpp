// Allocation accounting for the per-decision inference fast path.
//
// The fast-path contract (PR "decision fast path"): once the first few
// decisions have warmed every workspace — packed gemv panels, observation
// tables bound at episode start, thread-local logits/probs scratch — a
// DistributedDrlCoordinator::decide performs NO heap allocation, in both
// greedy and stochastic modes. This binary replaces global operator
// new/delete with counting versions, wraps the coordinator so only the
// allocations *inside* decide() are measured (the simulator itself may
// allocate between decisions), and asserts the steady-state count is zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/drl_env.hpp"
#include "rl/actor_critic.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

void* counted_alloc(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace dosc {
namespace {

/// Forwards to an inner coordinator, counting allocations made inside each
/// decide() call. The first `warmup` decisions (pack, scratch growth,
/// thread_local buffers) are exempt; everything after is steady state.
class AllocCountingCoordinator final : public sim::Coordinator {
 public:
  AllocCountingCoordinator(sim::Coordinator& inner, std::size_t warmup)
      : inner_(inner), warmup_(warmup) {}

  int decide(const sim::Simulator& sim, const sim::Flow& flow, net::NodeId node) override {
    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    const int action = inner_.decide(sim, flow, node);
    const std::uint64_t allocs = g_news.load(std::memory_order_relaxed) - before;
    if (++calls_ > warmup_) steady_allocs_ += allocs;
    return action;
  }
  void on_episode_start(const sim::Simulator& sim) override { inner_.on_episode_start(sim); }
  double periodic_interval() const override { return inner_.periodic_interval(); }
  void on_periodic(const sim::Simulator& sim, double time) override {
    inner_.on_periodic(sim, time);
  }

  std::uint64_t steady_allocs() const noexcept { return steady_allocs_; }
  std::uint64_t calls() const noexcept { return calls_; }

 private:
  sim::Coordinator& inner_;
  std::size_t warmup_;
  std::uint64_t calls_ = 0;
  std::uint64_t steady_allocs_ = 0;
};

rl::ActorCritic make_policy(const sim::Scenario& scenario) {
  rl::ActorCriticConfig config;
  config.obs_dim = core::observation_dim(scenario.network().max_degree());
  config.num_actions = scenario.network().max_degree() + 1;
  config.hidden = {64, 64};
  config.seed = 5;
  return rl::ActorCritic(config);
}

std::uint64_t steady_decide_allocs(bool stochastic, std::uint64_t* calls_out = nullptr) {
  const sim::Scenario scenario =
      sim::make_base_scenario(2).with_end_time(1500.0);
  const rl::ActorCritic policy = make_policy(scenario);
  core::DistributedDrlCoordinator inner(policy, scenario.network().max_degree(), stochastic,
                                        util::Rng(3));
  AllocCountingCoordinator counter(inner, /*warmup=*/5);
  sim::Simulator sim(scenario, /*seed=*/17);
  sim.run(counter);
  if (calls_out != nullptr) *calls_out = counter.calls();
  return counter.steady_allocs();
}

TEST(DecideAlloc, CountingAllocatorSeesAllocations) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  volatile std::size_t n = 4096;
  double* p = new double[n];
  delete[] p;
  EXPECT_GT(g_news.load(std::memory_order_relaxed), before);
}

TEST(DecideAlloc, GreedyDecideSteadyStateIsAllocationFree) {
  std::uint64_t calls = 0;
  EXPECT_EQ(steady_decide_allocs(/*stochastic=*/false, &calls), 0u);
  EXPECT_GT(calls, 50u) << "scenario too short to exercise steady state";
}

TEST(DecideAlloc, StochasticDecideSteadyStateIsAllocationFree) {
  // The sampled path (softmax + inline CDF walk) must be just as clean as
  // greedy argmax.
  std::uint64_t calls = 0;
  EXPECT_EQ(steady_decide_allocs(/*stochastic=*/true, &calls), 0u);
  EXPECT_GT(calls, 50u);
}

}  // namespace
}  // namespace dosc
