// Substrate failure injection: the robustness dimension behind the paper's
// "no single point of failure" argument. Failed nodes black-hole traffic
// and lose their instances; failed links carry nothing; recovery restores
// capacity; and the adaptive distributed algorithms route around failures
// using only the free-capacity observations.
#include <gtest/gtest.h>

#include "baselines/gcasp.hpp"
#include "baselines/shortest_path.hpp"
#include "core/observation.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace dosc::sim {
namespace {

using test::LambdaCoordinator;
using test::ScriptedCoordinator;
using test::TinyScenarioOptions;
using test::tiny_scenario;

Scenario failing_line(std::vector<FailureEvent> failures, double end_time = 100.0,
                      double interarrival = 10.0) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = end_time;
  options.interarrival = interarrival;
  ScenarioConfig config;
  config.ingress = options.ingress;
  config.egress = options.egress;
  config.end_time = options.end_time;
  config.traffic = traffic::TrafficSpec::fixed(interarrival);
  config.node_cap_lo = config.node_cap_hi = 10.0;
  config.link_cap_lo = config.link_cap_hi = 10.0;
  config.flows = {FlowTemplate{}};
  config.failures = std::move(failures);
  return Scenario(config, test::one_component_catalog(), test::line3());
}

TEST(Failures, ValidationRejectsBadIds) {
  ScenarioConfig config;
  config.ingress = {0};
  config.egress = 2;
  config.failures = {{FailureEvent::Kind::kNode, 99, 10.0, 5.0}};
  EXPECT_THROW(Scenario(config, test::one_component_catalog(), test::line3()),
               std::invalid_argument);
  config.failures = {{FailureEvent::Kind::kLink, 7, 10.0, 5.0}};
  EXPECT_THROW(Scenario(config, test::one_component_catalog(), test::line3()),
               std::invalid_argument);
}

TEST(Failures, JsonRoundTrip) {
  ScenarioConfig config;
  config.failures = {{FailureEvent::Kind::kNode, 1, 50.0, 25.0},
                     {FailureEvent::Kind::kLink, 0, 70.0, 0.0}};
  const ScenarioConfig back = ScenarioConfig::from_json(config.to_json());
  ASSERT_EQ(back.failures.size(), 2u);
  EXPECT_EQ(back.failures[0].kind, FailureEvent::Kind::kNode);
  EXPECT_EQ(back.failures[0].id, 1u);
  EXPECT_DOUBLE_EQ(back.failures[0].start, 50.0);
  EXPECT_DOUBLE_EQ(back.failures[0].duration, 25.0);
  EXPECT_EQ(back.failures[1].kind, FailureEvent::Kind::kLink);
}

TEST(Failures, FlowsArrivingAtFailedNodeAreDropped) {
  // Node 1 fails permanently at t=25. Flow 1 (t=10) clears it at t=17-19;
  // flow 2 (t=20) finishes processing at t=25 and is forwarded into the
  // dead node at t=27, where it dies.
  const Scenario scenario =
      failing_line({{FailureEvent::Kind::kNode, 1, 25.0, 0.0}}, /*end_time=*/25.0);
  // Process at ingress, forward 0->1, then 1->2.
  ScriptedCoordinator coordinator({0, 1, 2, 0, 1, 2});
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.generated, 2u);
  EXPECT_EQ(metrics.succeeded, 1u);
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kNodeFailed)], 1u);
}

TEST(Failures, ProcessingFlowsDieWithTheNode) {
  // The flow starts processing at the ingress at t=10 (takes 5 ms); the
  // ingress fails at t=12, mid-processing.
  const Scenario scenario =
      failing_line({{FailureEvent::Kind::kNode, 0, 12.0, 0.0}}, /*end_time=*/15.0);
  ScriptedCoordinator coordinator({0});
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.generated, 1u);
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kNodeFailed)], 1u);
  EXPECT_EQ(metrics.succeeded, 0u);
}

TEST(Failures, FailedLinkDropsForwards) {
  // Link 0 (between nodes 0 and 1) fails before the flow is forwarded.
  const Scenario scenario =
      failing_line({{FailureEvent::Kind::kLink, 0, 5.0, 0.0}}, /*end_time=*/15.0);
  ScriptedCoordinator coordinator({0, 1});  // process, then forward into the dead link
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kLinkFailed)], 1u);
}

TEST(Failures, RecoveryRestoresService) {
  // Node 1 is down from t=5 to t=25. Flow 1 (t=10) dies there; flow 2
  // (t=30) sails through after recovery.
  const Scenario scenario =
      failing_line({{FailureEvent::Kind::kNode, 1, 5.0, 20.0}}, /*end_time=*/35.0,
                   /*interarrival=*/10.0);
  std::size_t completed = 0;
  std::size_t failed_drops = 0;
  class Observer final : public FlowObserver {
   public:
    std::size_t* completed;
    std::size_t* failed;
    void on_completed(const Flow&, double) override { ++*completed; }
    void on_dropped(const Flow&, DropReason reason, double) override {
      if (reason == DropReason::kNodeFailed) ++*failed;
    }
  } observer;
  observer.completed = &completed;
  observer.failed = &failed_drops;
  ScriptedCoordinator coordinator({0, 1, 2, 0, 1, 2, 0, 1, 2});
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator, &observer);
  EXPECT_EQ(metrics.generated, 3u);  // t = 10, 20, 30
  EXPECT_GE(completed, 1u);
  EXPECT_GE(failed_drops, 1u);
  // The last flow (post-recovery) must be among the completed ones.
  EXPECT_EQ(metrics.succeeded + metrics.dropped, 3u);
}

TEST(Failures, FailedNodeLosesItsInstancesAndCapacityObservation) {
  // While node 1 is down, an agent at node 0 observing it must see
  // non-positive free capacity and no instance.
  const Scenario scenario =
      failing_line({{FailureEvent::Kind::kNode, 1, 5.0, 50.0}}, /*end_time=*/15.0);
  bool checked = false;
  LambdaCoordinator coordinator(
      [&](const Simulator& sim, const Flow& flow, net::NodeId node) -> int {
        if (node == 0 && sim.time() > 5.0 && !checked) {
          checked = true;
          EXPECT_TRUE(sim.node_failed(1));
          EXPECT_LE(sim.node_free(1), 0.0);
          EXPECT_FALSE(sim.instance_available(1, 0));
        }
        if (!sim.fully_processed(flow)) return 0;
        return node == 0 ? 1 : 2;
      });
  Simulator sim(scenario, 1);
  sim.run(coordinator);
  EXPECT_TRUE(checked);
}

TEST(Failures, GcaspRoutesAroundFailedFastPath) {
  // Diamond: fast path A-B-D, slow path A-C-D. B fails; GCASP must take
  // the slow path (its candidate B has free capacity <= 0 and the link
  // check alone won't save it — the arrival at B would die — but GCASP
  // skips B because it can't process there AND the deadline allows C).
  net::Network network = test::diamond(10.0, 10.0);
  for (net::NodeId v = 0; v < network.num_nodes(); ++v) network.set_node_capacity(v, 10.0);
  ScenarioConfig config;
  config.ingress = {0};
  config.egress = 3;
  config.end_time = 15.0;
  config.traffic = traffic::TrafficSpec::fixed(10.0);
  config.randomize_capacities = false;
  config.flows = {FlowTemplate{}};
  config.failures = {{FailureEvent::Kind::kLink, 0, 1.0, 0.0}};  // A-B link down
  const Scenario scenario(config, test::one_component_catalog(), std::move(network));
  baselines::GcaspCoordinator gcasp;
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(gcasp);
  EXPECT_EQ(metrics.succeeded, 1u);
  // Took the slow detour: 5 ms processing + 6 ms path.
  EXPECT_DOUBLE_EQ(metrics.e2e_delay.mean(), 11.0);
}

TEST(Failures, SpDoesNotRouteAroundFailures) {
  // Same failed fast path: SP still follows the shortest path into the
  // dead link and loses the flow — the brittleness failures expose.
  net::Network network = test::diamond(10.0, 10.0);
  for (net::NodeId v = 0; v < network.num_nodes(); ++v) network.set_node_capacity(v, 0.4);
  ScenarioConfig config;
  config.ingress = {0};
  config.egress = 3;
  config.end_time = 15.0;
  config.traffic = traffic::TrafficSpec::fixed(10.0);
  config.randomize_capacities = false;
  config.flows = {FlowTemplate{}};
  config.failures = {{FailureEvent::Kind::kLink, 0, 1.0, 0.0}};
  const Scenario scenario(config, test::one_component_catalog(), std::move(network));
  baselines::ShortestPathCoordinator sp;
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(sp);
  EXPECT_EQ(metrics.succeeded, 0u);
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kLinkFailed)], 1u);
}

TEST(Failures, DropReasonNames) {
  EXPECT_STREQ(drop_reason_name(DropReason::kNodeFailed), "node_failed");
  EXPECT_STREQ(drop_reason_name(DropReason::kLinkFailed), "link_failed");
}

TEST(ObservationMask, DisabledBlocksReadZero) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  core::ObservationMask mask;
  mask.delays = false;
  mask.instances = false;
  core::ObservationBuilder full(scenario.network().max_degree());
  core::ObservationBuilder masked(scenario.network().max_degree(), mask);
  std::vector<double> full_obs;
  std::vector<double> masked_obs;
  LambdaCoordinator coordinator(
      [&](const Simulator& sim, const Flow& flow, net::NodeId node) -> int {
        if (full_obs.empty()) {
          full_obs = full.build(sim, flow, node);
          masked_obs = masked.build(sim, flow, node);
        }
        return 0;
      });
  Simulator sim(scenario, 1);
  sim.run(coordinator);
  ASSERT_EQ(full_obs.size(), masked_obs.size());
  const std::size_t d = scenario.network().max_degree();
  // F, R^L, R^V identical; D block and X block zeroed.
  for (std::size_t i = 0; i < 3 + 2 * d; ++i) EXPECT_DOUBLE_EQ(masked_obs[i], full_obs[i]);
  for (std::size_t i = 3 + 2 * d; i < masked_obs.size(); ++i) {
    EXPECT_DOUBLE_EQ(masked_obs[i], 0.0);
  }
}

}  // namespace
}  // namespace dosc::sim
