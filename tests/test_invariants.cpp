// Property tests: simulator invariants that must hold under ANY
// coordination policy, exercised with randomized policies and scenarios
// (parameterized over traffic kinds and topologies).
#include <gtest/gtest.h>

#include "core/observation.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace dosc::sim {
namespace {

/// Coordinator that takes uniformly random (often invalid) actions while
/// checking state invariants at every decision.
class InvariantChecker final : public Coordinator {
 public:
  explicit InvariantChecker(std::uint64_t seed) : rng_(seed) {}

  int decide(const Simulator& sim, const Flow& flow, net::NodeId node) override {
    ++decisions_;
    const net::Network& network = sim.network();

    // Resource usage is non-negative and never exceeds capacity (+eps).
    for (net::NodeId v = 0; v < network.num_nodes(); ++v) {
      EXPECT_GE(sim.node_used(v), -1e-9);
      EXPECT_LE(sim.node_used(v), network.node(v).capacity + 1e-6);
    }
    for (net::LinkId l = 0; l < network.num_links(); ++l) {
      EXPECT_GE(sim.link_used(l), -1e-9);
      EXPECT_LE(sim.link_used(l), network.link(l).capacity + 1e-6);
    }
    // Time moves forward; the flow is alive and located where claimed.
    EXPECT_GE(sim.time(), last_time_);
    last_time_ = sim.time();
    EXPECT_TRUE(flow.alive);
    EXPECT_EQ(flow.current_node, node);
    // Flows are only asked for decisions before their deadline.
    EXPECT_GE(flow.remaining_deadline(sim.time()), -1e-9);
    // chain_pos never exceeds the chain length.
    EXPECT_LE(flow.chain_pos, sim.service_of(flow).length());

    return static_cast<int>(rng_.uniform_int(0, static_cast<std::int64_t>(
                                                    network.max_degree())));
  }

  std::size_t decisions() const noexcept { return decisions_; }

 private:
  util::Rng rng_;
  double last_time_ = 0.0;
  std::size_t decisions_ = 0;
};

struct Case {
  const char* topology;
  traffic::ArrivalKind kind;
};

class SimInvariants : public ::testing::TestWithParam<Case> {};

TEST_P(SimInvariants, HoldUnderRandomPolicy) {
  const Case& c = GetParam();
  traffic::TrafficSpec spec;
  switch (c.kind) {
    case traffic::ArrivalKind::kFixed: spec = traffic::TrafficSpec::fixed(6.0); break;
    case traffic::ArrivalKind::kPoisson: spec = traffic::TrafficSpec::poisson(6.0); break;
    case traffic::ArrivalKind::kMmpp: spec = traffic::TrafficSpec::mmpp(8.0, 4.0); break;
    case traffic::ArrivalKind::kTrace: spec = traffic::TrafficSpec::diurnal_trace(5); break;
  }
  const Scenario scenario =
      make_base_scenario(3, spec, 60.0, c.topology, /*end_time=*/800.0);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Simulator sim(scenario, seed);
    InvariantChecker checker(seed * 13);
    const SimMetrics metrics = sim.run(checker);
    // Accounting closes: every generated flow either succeeded or dropped
    // (the horizon outlives every deadline).
    EXPECT_EQ(metrics.succeeded + metrics.dropped, metrics.generated);
    EXPECT_GT(checker.decisions(), 0u);
    EXPECT_EQ(metrics.decisions, checker.decisions());
    // Success ratio is a valid probability.
    EXPECT_GE(metrics.success_ratio(), 0.0);
    EXPECT_LE(metrics.success_ratio(), 1.0);
    // Completed flows met their deadline.
    if (metrics.e2e_delay.count() > 0) {
      EXPECT_LE(metrics.e2e_delay.max(), 60.0 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimInvariants,
    ::testing::Values(Case{"abilene", traffic::ArrivalKind::kFixed},
                      Case{"abilene", traffic::ArrivalKind::kPoisson},
                      Case{"abilene", traffic::ArrivalKind::kMmpp},
                      Case{"abilene", traffic::ArrivalKind::kTrace},
                      Case{"bt_europe", traffic::ArrivalKind::kPoisson},
                      Case{"china_telecom", traffic::ArrivalKind::kPoisson},
                      Case{"interroute", traffic::ArrivalKind::kPoisson}),
    [](const auto& info) {
      return std::string(info.param.topology) + "_" +
             traffic::arrival_kind_name(info.param.kind);
    });

TEST(SimInvariants, AllResourcesReleasedAtEpisodeEnd) {
  // After the event queue drains, every hold must have been released:
  // usage probes via a final zero-capacity... we verify through a second
  // tiny flow wave: run a scenario whose traffic stops early and check the
  // last decisions observe an empty network.
  test::TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.interarrival = 2.0;
  options.end_time = 100.0;
  options.deadline = 30.0;
  const Scenario scenario =
      test::tiny_scenario(test::line3(), test::one_component_catalog(), options);
  // Random policy run; then inspect usage through a probe flow at the end:
  // the final FlowArrival events happen after all earlier holds expired.
  double final_node_usage_sum = -1.0;
  test::LambdaCoordinator coordinator(
      [&](const Simulator& sim, const Flow&, net::NodeId) -> int {
        double sum = 0.0;
        for (net::NodeId v = 0; v < sim.network().num_nodes(); ++v) sum += sim.node_used(v);
        final_node_usage_sum = sum;
        return 0;
      });
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.succeeded + metrics.dropped, metrics.generated);
  // The very last decision (a fresh flow at an idle moment or a parked
  // one) saw bounded usage; the strong guarantee is enforced inside
  // InvariantChecker above. Here we only require the probe ran.
  EXPECT_GE(final_node_usage_sum, 0.0);
}

TEST(SimInvariants, HoldUnderRandomPolicyWithFailures) {
  // Same invariants with substrate failures injected mid-episode: usage
  // stays bounded, accounting closes, and nothing crashes while elements
  // flap. Capacity bound: a down node/link reports zero capacity but may
  // still carry usage acquired before the failure, so only the original
  // capacity bound is asserted.
  Scenario base = make_base_scenario(3, traffic::TrafficSpec::poisson(6.0), 60.0, "abilene",
                                     800.0);
  ScenarioConfig config = base.config();
  config.failures = {{FailureEvent::Kind::kNode, 8, 200.0, 150.0},
                     {FailureEvent::Kind::kLink, 8, 300.0, 100.0},
                     {FailureEvent::Kind::kNode, 2, 500.0, 0.0}};
  const Scenario scenario(config, make_video_streaming_catalog());
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Simulator sim(scenario, seed);
    InvariantChecker checker(seed * 17);
    const SimMetrics metrics = sim.run(checker);
    EXPECT_EQ(metrics.succeeded + metrics.dropped, metrics.generated);
    EXPECT_GT(metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kNodeFailed)] +
                  metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kLinkFailed)],
              0u);
    if (metrics.e2e_delay.count() > 0) {
      EXPECT_LE(metrics.e2e_delay.max(), 60.0 + 1e-9);
    }
  }
}

TEST(SimInvariants, ObservationsAlwaysWellFormedUnderChaos) {
  // Random policy + every traffic kind: the observation builder never
  // produces NaN or out-of-range values even for expired-deadline or
  // fully-processed flows.
  const Scenario scenario = make_base_scenario(
      4, traffic::TrafficSpec::mmpp(6.0, 3.0), 40.0, "abilene", 600.0);
  core::ObservationBuilder builder(scenario.network().max_degree());
  util::Rng rng(9);
  test::LambdaCoordinator coordinator(
      [&](const Simulator& sim, const Flow& flow, net::NodeId node) -> int {
        const auto& obs = builder.build(sim, flow, node);
        for (const double o : obs) {
          EXPECT_FALSE(std::isnan(o));
          EXPECT_GE(o, -1.0);
          EXPECT_LE(o, 1.0);
        }
        return static_cast<int>(rng.uniform_int(0, 3));
      });
  Simulator sim(scenario, 17);
  sim.run(coordinator);
}

}  // namespace
}  // namespace dosc::sim
