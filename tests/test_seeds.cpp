// Seed-stream contracts: episode seeds are decorrelated across the
// (training seed, iteration, environment) grid, and evaluation is
// bit-reproducible regardless of the compute thread count.
#include <gtest/gtest.h>

#include <set>

#include "core/observation.hpp"
#include "core/trainer.hpp"
#include "nn/parallel.hpp"
#include "rl/actor_critic.hpp"
#include "sim/scenario.hpp"

namespace dosc::core {
namespace {

TEST(EpisodeSeed, DistinctAcrossTheTrainingGrid) {
  // Every (base, seed_index, iteration, env_index) combination a training
  // run touches must map to a unique simulator seed — a collision would
  // feed two workers the same traffic and silently halve the experience
  // diversity. 2 bases x 5 seeds x 40 iterations x 4 envs = 1600 draws.
  std::set<std::uint64_t> seen;
  std::size_t draws = 0;
  for (std::uint64_t base : {1ULL, 2ULL}) {
    for (std::size_t s = 0; s < 5; ++s) {
      for (std::size_t it = 0; it < 40; ++it) {
        for (std::size_t env = 0; env < 4; ++env) {
          seen.insert(episode_seed(base, s, it, env));
          ++draws;
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), draws);
}

TEST(EpisodeSeed, PureFunctionOfInputs) {
  EXPECT_EQ(episode_seed(1, 2, 3, 4), episode_seed(1, 2, 3, 4));
  EXPECT_NE(episode_seed(1, 2, 3, 4), episode_seed(1, 2, 3, 5));
  EXPECT_NE(episode_seed(1, 2, 3, 4), episode_seed(1, 2, 4, 4));
  EXPECT_NE(episode_seed(1, 2, 3, 4), episode_seed(1, 3, 3, 4));
  EXPECT_NE(episode_seed(1, 2, 3, 4), episode_seed(2, 2, 3, 4));
}

TEST(SeedStreams, EvaluatePolicyIsThreadCountInvariant) {
  // evaluate_policy for a fixed seed_base must be bit-reproducible whatever
  // DOSC_THREADS says: the NN kernels are bit-deterministic by thread
  // count, and the simulator consumes no other nondeterminism.
  const sim::Scenario scenario = sim::make_base_scenario(2).with_end_time(600.0);
  rl::ActorCriticConfig config;
  config.obs_dim = observation_dim(scenario.network().max_degree());
  config.num_actions = scenario.network().max_degree() + 1;
  config.hidden = {32, 32};
  config.seed = 5;
  const rl::ActorCritic policy(config);

  EvalResult one;
  EvalResult four;
  {
    nn::ComputeThreadsGuard guard(1);
    one = evaluate_policy(scenario, policy, RewardConfig{}, 3, 600.0, 17);
  }
  {
    nn::ComputeThreadsGuard guard(4);
    four = evaluate_policy(scenario, policy, RewardConfig{}, 3, 600.0, 17);
  }
  EXPECT_EQ(one.success_ratio, four.success_ratio);
  EXPECT_EQ(one.mean_reward, four.mean_reward);
  EXPECT_EQ(one.mean_e2e_delay, four.mean_e2e_delay);

  // And for the same thread count it is exactly reproducible.
  EvalResult again;
  {
    nn::ComputeThreadsGuard guard(4);
    again = evaluate_policy(scenario, policy, RewardConfig{}, 3, 600.0, 17);
  }
  EXPECT_EQ(four.success_ratio, again.success_ratio);
  EXPECT_EQ(four.mean_reward, again.mean_reward);
  EXPECT_EQ(four.mean_e2e_delay, again.mean_e2e_delay);
}

TEST(SeedStreams, EvaluatePolicyIsEpisodeParallelismInvariant) {
  // Episode-level parallelism (the --episodes-parallel fast path) must be
  // bit-identical to the sequential loop: each episode is fully independent
  // (own Simulator seeded seed_base + e, own coordinator), and per-episode
  // stats are merged in ascending episode order after all workers join.
  const sim::Scenario scenario = sim::make_base_scenario(2).with_end_time(600.0);
  rl::ActorCriticConfig config;
  config.obs_dim = observation_dim(scenario.network().max_degree());
  config.num_actions = scenario.network().max_degree() + 1;
  config.hidden = {32, 32};
  config.seed = 5;
  const rl::ActorCritic policy(config);

  const EvalResult sequential =
      evaluate_policy(scenario, policy, RewardConfig{}, 4, 600.0, 17, {}, 1);
  const EvalResult pooled =
      evaluate_policy(scenario, policy, RewardConfig{}, 4, 600.0, 17, {}, 4);
  const EvalResult auto_sized =
      evaluate_policy(scenario, policy, RewardConfig{}, 4, 600.0, 17, {}, 0);
  EXPECT_EQ(sequential.success_ratio, pooled.success_ratio);
  EXPECT_EQ(sequential.mean_reward, pooled.mean_reward);
  EXPECT_EQ(sequential.mean_e2e_delay, pooled.mean_e2e_delay);
  EXPECT_EQ(sequential.success_ratio, auto_sized.success_ratio);
  EXPECT_EQ(sequential.mean_reward, auto_sized.mean_reward);
  EXPECT_EQ(sequential.mean_e2e_delay, auto_sized.mean_e2e_delay);
}

}  // namespace
}  // namespace dosc::core
