// Property tests for the scenario corpus generator (src/check/corpus.hpp):
// fat-tree/Clos structure, WAN geometry, flash-crowd and failure-storm load
// programs, deterministic regeneration, the scenario JSON round-trip fixed
// point over scenarios/*.json and every corpus entry, and the auditor's
// sampled mode / fuzzer large-topology guard that make the big entries
// tractable. DOSC_SOURCE_DIR (a compile definition) locates the checked-in
// scenario files from the build tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "baselines/shortest_path.hpp"
#include "check/auditor.hpp"
#include "check/corpus.hpp"
#include "check/digest.hpp"
#include "check/fuzzer.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "traffic/trace.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace dosc::check {
namespace {

// --- fat-tree structure -----------------------------------------------------

class FatTreeStructure : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FatTreeStructure, TierSizesDegreesAndConnectivity) {
  const std::size_t k = GetParam();
  util::Rng rng(99);
  FatTreeTiers tiers;
  const net::Network network = make_fat_tree({.k = k}, rng, &tiers);

  // k^3/4 hosts + k^2 pod switches + (k/2)^2 cores.
  EXPECT_EQ(tiers.hosts.size(), k * k * k / 4);
  EXPECT_EQ(tiers.edges.size(), k * k / 2);
  EXPECT_EQ(tiers.aggs.size(), k * k / 2);
  EXPECT_EQ(tiers.cores.size(), (k / 2) * (k / 2));
  EXPECT_EQ(network.num_nodes(),
            tiers.hosts.size() + tiers.edges.size() + tiers.aggs.size() + tiers.cores.size());
  EXPECT_TRUE(network.connected());

  // Hosts hang off exactly one edge switch; every switch has radix k.
  for (const net::NodeId h : tiers.hosts) EXPECT_EQ(network.degree(h), 1u);
  for (const net::NodeId e : tiers.edges) EXPECT_EQ(network.degree(e), k);
  for (const net::NodeId a : tiers.aggs) EXPECT_EQ(network.degree(a), k);
  for (const net::NodeId c : tiers.cores) EXPECT_EQ(network.degree(c), k);
}

TEST_P(FatTreeStructure, EveryEdgeSwitchReachesEveryCoreViaOneAgg) {
  // The Clos property: edge -> agg -> core in exactly two hops, for every
  // (edge switch, core) pair — this is what gives the fabric its path
  // diversity, and it fails if the agg->core group wiring is wrong.
  const std::size_t k = GetParam();
  util::Rng rng(99);
  FatTreeTiers tiers;
  const net::Network network = make_fat_tree({.k = k}, rng, &tiers);
  const std::set<net::NodeId> aggs(tiers.aggs.begin(), tiers.aggs.end());
  for (const net::NodeId e : tiers.edges) {
    for (const net::NodeId c : tiers.cores) {
      bool two_hop = false;
      for (const net::Neighbor& n : network.neighbors(e)) {
        if (aggs.count(n.node) != 0 && network.find_link(n.node, c).has_value()) {
          two_hop = true;
          break;
        }
      }
      EXPECT_TRUE(two_hop) << "edge " << e << " cannot reach core " << c << " via an agg";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radix, FatTreeStructure, ::testing::Values(4, 6, 8));

TEST(FatTree, DelayJitterStaysWithinBand) {
  util::Rng rng(5);
  FatTreeTiers tiers;
  const FatTreeParams params{.k = 4, .delay_jitter = 0.2};
  const net::Network network = make_fat_tree(params, rng, &tiers);
  const double max_base = std::max(
      {params.host_edge_delay, params.edge_agg_delay, params.agg_core_delay});
  for (const net::Link& link : network.links()) {
    EXPECT_GT(link.delay, 0.0);
    EXPECT_LE(link.delay, max_base * (1.0 + params.delay_jitter) + 1e-12);
    EXPECT_GE(link.delay, params.host_edge_delay * (1.0 - params.delay_jitter) - 1e-12);
  }
}

TEST(FatTree, RejectsOddOrTinyRadix) {
  util::Rng rng(1);
  EXPECT_THROW(make_fat_tree({.k = 3}, rng), std::invalid_argument);
  EXPECT_THROW(make_fat_tree({.k = 0}, rng), std::invalid_argument);
}

// --- WAN geometry -----------------------------------------------------------

TEST(Wan, ConnectedWithDelayBoundsAndCoordinates) {
  util::Rng rng(17);
  const WanParams params{.num_nodes = 120};
  const net::Network network = make_wan(params, rng);
  EXPECT_EQ(network.num_nodes(), params.num_nodes);
  EXPECT_TRUE(network.connected());
  // At least the attachment tree, plus Waxman extras.
  EXPECT_GE(network.num_links(), params.num_nodes - 1);

  const double diagonal = std::sqrt(2.0) * params.extent;
  for (const net::Link& link : network.links()) {
    EXPECT_GE(link.delay, params.min_delay - 1e-12);
    EXPECT_LE(link.delay, params.min_delay + params.delay_per_unit * diagonal + 1e-12);
    // Delay is proportional to the endpoint distance, not an independent draw.
    const net::Node& a = network.node(link.a);
    const net::Node& b = network.node(link.b);
    const double dist = std::hypot(a.x - b.x, a.y - b.y);
    EXPECT_NEAR(link.delay, params.min_delay + params.delay_per_unit * dist, 1e-9);
  }
  for (const net::Node& node : network.nodes()) {
    EXPECT_GE(node.x, 0.0);
    EXPECT_LT(node.x, params.extent);
    EXPECT_GE(node.y, 0.0);
    EXPECT_LT(node.y, params.extent);
  }
}

TEST(Wan, DenserWithHigherAlpha) {
  util::Rng rng_sparse(3), rng_dense(3);
  const std::size_t sparse =
      make_wan({.num_nodes = 150, .waxman_alpha = 0.2}, rng_sparse).num_links();
  const std::size_t dense =
      make_wan({.num_nodes = 150, .waxman_alpha = 0.95}, rng_dense).num_links();
  EXPECT_GT(dense, sparse);
}

// --- load programs ----------------------------------------------------------

TEST(FlashCrowd, SpikesRaiseRateWithinClamp) {
  traffic::FlashCrowdConfig config;
  config.seed = 21;
  const traffic::RateTrace trace = traffic::make_flash_crowd_trace(config);
  EXPECT_DOUBLE_EQ(trace.horizon(), config.horizon);
  ASSERT_FALSE(trace.segments().empty());

  double min_mean = config.base_interarrival;
  std::size_t off_crowd = 0;
  for (const traffic::RateTrace::Segment& segment : trace.segments()) {
    EXPECT_GE(segment.mean_interarrival, config.min_interarrival - 1e-12);
    EXPECT_LE(segment.mean_interarrival, config.base_interarrival + 1e-12);
    min_mean = std::min(min_mean, segment.mean_interarrival);
    if (segment.mean_interarrival >= config.base_interarrival - 1e-9) ++off_crowd;
  }
  // The spike peak divides the inter-arrival by crowd_intensity...
  EXPECT_LT(min_mean, config.base_interarrival / (0.9 * config.crowd_intensity));
  // ...but most of the horizon stays at the base rate (crowds are bursts).
  EXPECT_GT(off_crowd, trace.segments().size() / 2);
}

TEST(FlashCrowd, RejectsNonsenseConfigs) {
  traffic::FlashCrowdConfig config;
  config.crowd_intensity = 0.5;  // a "crowd" that lowers the rate
  EXPECT_THROW(traffic::make_flash_crowd_trace(config), std::invalid_argument);
  config = {};
  config.num_crowds = 50;  // crowds would cover more than half the horizon
  EXPECT_THROW(traffic::make_flash_crowd_trace(config), std::invalid_argument);
}

TEST(FailureStorm, CoLocatedStaggeredAndEgressSafe) {
  util::Rng topo_rng(8);
  FatTreeTiers tiers;
  const net::Network network = make_fat_tree({.k = 6}, topo_rng, &tiers);
  const net::NodeId egress = tiers.hosts.back();
  const FailureStormParams params;
  const double end_time = 5000.0;
  util::Rng rng(77);
  const std::vector<sim::FailureEvent> storm =
      make_failure_storm(network, params, egress, end_time, rng);
  ASSERT_EQ(storm.size(), params.num_node_failures + params.num_link_failures);

  // Collect the failed elements and check the correlation property: all of
  // them live inside one connected neighbourhood (the BFS cluster), rather
  // than being independent uniform draws over the whole fabric.
  std::set<net::NodeId> touched;
  std::size_t node_failures = 0;
  for (const sim::FailureEvent& failure : storm) {
    EXPECT_GE(failure.start, params.start_frac * end_time - 1e-9);
    EXPECT_LT(failure.start, end_time);
    EXPECT_GT(failure.duration, 0.0);
    if (failure.kind == sim::FailureEvent::Kind::kNode) {
      ++node_failures;
      EXPECT_NE(failure.id, egress);
      touched.insert(failure.id);
    } else {
      ASSERT_LT(failure.id, network.num_links());
      touched.insert(network.link(failure.id).a);
      touched.insert(network.link(failure.id).b);
    }
  }
  EXPECT_EQ(node_failures, params.num_node_failures);

  // Connectivity of the touched set within the substrate graph.
  std::set<net::NodeId> reached;
  std::queue<net::NodeId> frontier;
  frontier.push(*touched.begin());
  reached.insert(*touched.begin());
  while (!frontier.empty()) {
    const net::NodeId v = frontier.front();
    frontier.pop();
    for (const net::Neighbor& n : network.neighbors(v)) {
      // Walk only within a 2-hop halo of the touched set so this checks
      // co-location, not global connectivity.
      bool near = touched.count(n.node) != 0;
      if (!near) {
        for (const net::Neighbor& m : network.neighbors(n.node)) {
          if (touched.count(m.node) != 0) {
            near = true;
            break;
          }
        }
      }
      if (near && reached.insert(n.node).second) frontier.push(n.node);
    }
  }
  for (const net::NodeId v : touched) {
    EXPECT_TRUE(reached.count(v) != 0) << "failure at node " << v << " is isolated";
  }
}

// --- catalogs ---------------------------------------------------------------

TEST(Catalogs, LongChainVisitsDistinctComponents) {
  util::Rng rng(31);
  const sim::ServiceCatalog catalog = make_long_chain_catalog(8, rng);
  EXPECT_EQ(catalog.num_components(), 8u);
  ASSERT_EQ(catalog.num_services(), 1u);
  const sim::Service& service = catalog.service(0);
  EXPECT_EQ(service.chain.size(), 8u);
  const std::set<sim::ComponentId> distinct(service.chain.begin(), service.chain.end());
  EXPECT_EQ(distinct.size(), service.chain.size());
  EXPECT_EQ(catalog.max_chain_length(), 8u);
}

TEST(Catalogs, MultiTenantSharesThePool) {
  util::Rng rng(32);
  const sim::ServiceCatalog catalog = make_multi_tenant_catalog(6, 10, rng);
  EXPECT_EQ(catalog.num_components(), 10u);
  EXPECT_EQ(catalog.num_services(), 6u);
  for (sim::ServiceId s = 0; s < catalog.num_services(); ++s) {
    const sim::Service& service = catalog.service(s);
    EXPECT_GE(service.chain.size(), 2u);
    EXPECT_LE(service.chain.size(), 5u);
    for (const sim::ComponentId c : service.chain) EXPECT_LT(c, 10u);
  }
}

// --- corpus library ---------------------------------------------------------

TEST(CorpusLibrary, CoversFamiliesLoadsAndScales) {
  const std::vector<CorpusEntryInfo>& library = CorpusGenerator::library();
  EXPECT_GE(library.size(), 12u);
  std::set<std::string> families, loads, names;
  std::set<std::uint64_t> seeds;
  for (const CorpusEntryInfo& info : library) {
    EXPECT_TRUE(names.insert(info.name).second) << "duplicate name " << info.name;
    EXPECT_TRUE(seeds.insert(info.seed).second) << "duplicate seed " << info.seed;
    families.insert(info.family);
    loads.insert(info.load);
  }
  EXPECT_TRUE(families.count("fat_tree"));
  EXPECT_TRUE(families.count("wan"));
  for (const char* load : {"steady", "diurnal", "flash", "storm"}) {
    EXPECT_TRUE(loads.count(load)) << load;
  }
}

TEST(CorpusLibrary, EntriesValidateAndSpanTheScaleRange) {
  std::size_t smallest = SIZE_MAX, largest = 0;
  for (const CorpusEntryInfo& info : CorpusGenerator::library()) {
    const sim::Scenario scenario = CorpusGenerator::make(info.name);
    EXPECT_TRUE(scenario.network().connected()) << info.name;
    smallest = std::min(smallest, scenario.network().num_nodes());
    largest = std::max(largest, scenario.network().num_nodes());
  }
  EXPECT_LE(smallest, 100u);
  EXPECT_GE(largest, 500u);
}

TEST(CorpusLibrary, RegenerationIsByteIdentical) {
  for (const char* name : {"ft_k4_steady", "ft_k6_flash", "wan_100_chain10"}) {
    const std::string a = CorpusGenerator::make(name).to_json().dump(2);
    const std::string b = CorpusGenerator::make(name).to_json().dump(2);
    EXPECT_EQ(a, b) << name;
  }
}

TEST(CorpusLibrary, UnknownNameThrows) {
  EXPECT_THROW(CorpusGenerator::make("ft_k13_lucky"), std::invalid_argument);
}

TEST(CorpusLibrary, SmallEntriesPassTheAuditor) {
  for (const char* name : {"ft_k4_steady", "wan_100_steady"}) {
    const sim::Scenario scenario = CorpusGenerator::make(name).with_end_time(800.0);
    sim::Simulator sim(scenario, 7);
    InvariantAuditor auditor;
    auditor.attach(sim);
    baselines::ShortestPathCoordinator coordinator;
    const sim::SimMetrics metrics = sim.run(coordinator, &auditor);
    EXPECT_TRUE(auditor.ok()) << name << ": " << auditor.report();
    EXPECT_GT(metrics.generated, 0u) << name;
  }
}

// --- JSON round-trip fixed point --------------------------------------------

/// serialize -> parse -> serialize must be the identity on the serialized
/// form (the fixed point is reached after one round).
void expect_round_trip_fixed_point(const sim::Scenario& scenario, const std::string& label) {
  const std::string once = scenario.to_json().dump(2);
  const sim::Scenario reparsed = sim::Scenario::from_json(util::Json::parse(once));
  const std::string twice = reparsed.to_json().dump(2);
  EXPECT_EQ(once, twice) << label;
}

TEST(ScenarioRoundTrip, FixedPointOnAllCheckedInScenarios) {
  const std::filesystem::path root = DOSC_SOURCE_DIR;
  std::size_t seen = 0;
  for (const auto& dir : {root / "scenarios", root / "scenarios" / "corpus"}) {
    ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() != ".json") continue;
      ++seen;
      const sim::Scenario scenario = sim::load_scenario(entry.path().string());
      expect_round_trip_fixed_point(scenario, entry.path().filename().string());
    }
  }
  EXPECT_GE(seen, 12u);  // the corpus alone has 12 entries
}

TEST(ScenarioRoundTrip, CorpusEntriesSurviveWithFullFidelity) {
  // from_json(to_json(s)) must preserve the embedded network and catalog,
  // not fall back to the named-topology defaults.
  const sim::Scenario scenario = CorpusGenerator::make("wan_100_chain10");
  const sim::Scenario reparsed = sim::Scenario::from_json(scenario.to_json());
  EXPECT_EQ(reparsed.network().num_nodes(), scenario.network().num_nodes());
  EXPECT_EQ(reparsed.network().num_links(), scenario.network().num_links());
  EXPECT_EQ(reparsed.catalog().num_components(), scenario.catalog().num_components());
  EXPECT_EQ(reparsed.catalog().max_chain_length(), scenario.catalog().max_chain_length());
  EXPECT_EQ(reparsed.config().ingress, scenario.config().ingress);
}

TEST(ScenarioRoundTrip, BareConfigFilesStillLoadWithDefaults) {
  const std::filesystem::path path =
      std::filesystem::path(DOSC_SOURCE_DIR) / "scenarios" / "base_poisson_2in.json";
  ASSERT_TRUE(std::filesystem::exists(path));
  const util::Json doc = util::Json::load_file(path.string());
  ASSERT_TRUE(doc.as_object().count("network") == 0);  // bare config on disk
  const sim::Scenario scenario = sim::load_scenario(path.string());
  EXPECT_GT(scenario.network().num_nodes(), 0u);
  EXPECT_GT(scenario.catalog().num_services(), 0u);
}

// --- scale guards: fuzzer O(n^2) limit and auditor sampled mode -------------

TEST(ScaleGuards, FuzzerHandlesLargeNodeBoundsSparsely) {
  FuzzBounds bounds;
  bounds.min_nodes = 400;
  bounds.max_nodes = 400;
  const ScenarioFuzzer fuzzer(bounds);
  const sim::Scenario scenario = fuzzer.make(1);
  const std::size_t n = scenario.network().num_nodes();
  EXPECT_EQ(n, 400u);
  EXPECT_TRUE(scenario.network().connected());
  // Sparse: spanning tree + ~extra_edge_prob * n extras, not ~n^2/2.
  EXPECT_LT(scenario.network().num_links(),
            (n - 1) + static_cast<std::size_t>(bounds.extra_edge_prob * n) + 1);
}

TEST(ScaleGuards, FuzzerBelowLimitUnchanged) {
  // Seeds at or below the pairwise limit must keep their historical
  // byte-identical scenarios (golden digests depend on this).
  const ScenarioFuzzer fuzzer;
  const std::string a = fuzzer.make(3).to_json().dump(2);
  const std::string b = ScenarioFuzzer(FuzzBounds{}).make(3).to_json().dump(2);
  EXPECT_EQ(a, b);
}

TEST(ScaleGuards, AuditorEntersSampledModeAndStaysClean) {
  const sim::Scenario scenario =
      CorpusGenerator::make("ft_k4_steady").with_end_time(600.0);
  AuditorOptions options;
  options.full_sweep_cells = 8;  // force sampled mode on a small fabric
  options.sample_stride = 16;
  sim::Simulator sim(scenario, 7);
  InvariantAuditor auditor(options);
  auditor.attach(sim);
  baselines::ShortestPathCoordinator coordinator;
  sim.run(coordinator, &auditor);
  EXPECT_TRUE(auditor.sampled_mode());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  EXPECT_NE(auditor.report().find("sampled"), std::string::npos);
}

TEST(ScaleGuards, AuditorFullModeOnSmallScenarios) {
  const sim::Scenario scenario =
      CorpusGenerator::make("ft_k4_steady").with_end_time(300.0);
  sim::Simulator sim(scenario, 7);
  InvariantAuditor auditor;
  auditor.attach(sim);
  baselines::ShortestPathCoordinator coordinator;
  sim.run(coordinator, &auditor);
  EXPECT_FALSE(auditor.sampled_mode());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

TEST(ScaleGuards, SampledAndFullModeAgreeOnTheEventStream) {
  // Sampling changes which invariants are swept, never the simulation
  // itself: the event digest must be identical either way.
  const sim::Scenario scenario =
      CorpusGenerator::make("ft_k4_steady").with_end_time(400.0);
  std::uint64_t digests[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    AuditorOptions options;
    if (mode == 1) options.full_sweep_cells = 8;
    sim::Simulator sim(scenario, 7);
    InvariantAuditor auditor(options);
    EventDigest digest;
    HookChain hooks{&auditor, &digest};
    sim.set_audit_hook(&hooks);
    baselines::ShortestPathCoordinator coordinator;
    sim.run(coordinator, &auditor);
    EXPECT_TRUE(auditor.ok()) << auditor.report();
    digests[mode] = digest.digest();
  }
  EXPECT_EQ(digests[0], digests[1]);
}

}  // namespace
}  // namespace dosc::check
