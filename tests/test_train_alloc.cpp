// Allocation accounting for the training hot path.
//
// The async-trainer contract: once a rollout worker's pools have warmed —
// the pooled TrajectoryBuffer's slot/step/observation storage, the
// open-addressing flow index, the drain target batch — recording a decision
// or crediting a reward performs NO heap allocation, and neither does a
// steady-shape drain. This binary replaces global operator new/delete with
// counting versions and pins the contract twice: synthetically on the bare
// TrajectoryBuffer (episode 2 of an identical recording pattern must be
// allocation-free end to end), and through a real simulator episode driven
// by TrainingEnv (an exact replay of a warmed episode must be
// allocation-free inside every decide() and reward event).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/drl_env.hpp"
#include "rl/rollout.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

void* counted_alloc(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace dosc {
namespace {

rl::ActorCritic make_policy(const sim::Scenario& scenario) {
  rl::ActorCriticConfig config;
  config.obs_dim = core::observation_dim(scenario.network().max_degree());
  config.num_actions = scenario.network().max_degree() + 1;
  config.hidden = {32, 32};
  config.seed = 5;
  return rl::ActorCritic(config);
}

TEST(TrainAlloc, CountingAllocatorSeesAllocations) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  volatile std::size_t n = 4096;
  double* p = new double[n];
  delete[] p;
  EXPECT_GT(g_news.load(std::memory_order_relaxed), before);
}

TEST(TrainAlloc, PooledBufferEpisodeLoopIsAllocationFreeOnceWarm) {
  rl::ActorCriticConfig net_config;
  net_config.obs_dim = 6;
  net_config.num_actions = 3;
  net_config.hidden = {8};
  net_config.seed = 2;
  const rl::ActorCritic net(net_config);
  rl::TrajectoryBuffer buffer(0.95);
  rl::Batch batch;
  std::vector<double> obs(6, 0.25);

  // One "episode": 32 interleaved flows, 4 decisions each with rewards,
  // half finished terminally and half truncated, then a drain.
  const auto run_episode = [&] {
    for (int step = 0; step < 4; ++step) {
      for (std::uint64_t flow = 0; flow < 32; ++flow) {
        obs[0] = static_cast<double>(step) * 0.1;
        buffer.record_decision(flow, obs, step % 3, -0.5);
        buffer.record_reward(flow, 0.25);
      }
    }
    for (std::uint64_t flow = 0; flow < 32; flow += 2) buffer.finish(flow);
    buffer.truncate_all();
    buffer.drain_into(batch, net, 6, /*with_behavior_logp=*/true);
  };

  run_episode();  // warm every pool, table, scratch, and the batch target
  ASSERT_EQ(batch.size(), 128u);

  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  run_episode();
  const std::uint64_t steady = g_news.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(steady, 0u);
  EXPECT_EQ(batch.size(), 128u);
}

/// Forwards decide() to a TrainingEnv, counting allocations made inside.
class AllocCountingCoordinator final : public sim::Coordinator {
 public:
  explicit AllocCountingCoordinator(core::TrainingEnv& inner) : inner_(inner) {}

  int decide(const sim::Simulator& sim, const sim::Flow& flow, net::NodeId node) override {
    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    const int action = inner_.decide(sim, flow, node);
    allocs_ += g_news.load(std::memory_order_relaxed) - before;
    ++calls_;
    return action;
  }
  void on_episode_start(const sim::Simulator& sim) override { inner_.on_episode_start(sim); }

  std::uint64_t allocs() const noexcept { return allocs_; }
  std::uint64_t calls() const noexcept { return calls_; }

 private:
  core::TrainingEnv& inner_;
  std::uint64_t calls_ = 0;
  std::uint64_t allocs_ = 0;
};

/// Forwards flow events to a TrainingEnv, counting allocations made inside
/// the reward-crediting path.
class AllocCountingObserver final : public sim::FlowObserver {
 public:
  explicit AllocCountingObserver(core::TrainingEnv& inner) : inner_(inner) {}

  void on_completed(const sim::Flow& flow, double t) override {
    count([&] { inner_.on_completed(flow, t); });
  }
  void on_dropped(const sim::Flow& flow, sim::DropReason r, double t) override {
    count([&] { inner_.on_dropped(flow, r, t); });
  }
  void on_component_processed(const sim::Flow& flow, net::NodeId n, double t) override {
    count([&] { inner_.on_component_processed(flow, n, t); });
  }
  void on_forwarded(const sim::Flow& flow, net::NodeId n, net::LinkId l, double t) override {
    count([&] { inner_.on_forwarded(flow, n, l, t); });
  }
  void on_parked(const sim::Flow& flow, net::NodeId n, double t) override {
    count([&] { inner_.on_parked(flow, n, t); });
  }

  std::uint64_t allocs() const noexcept { return allocs_; }

 private:
  template <typename Fn>
  void count(Fn&& fn) {
    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    fn();
    allocs_ += g_news.load(std::memory_order_relaxed) - before;
  }

  core::TrainingEnv& inner_;
  std::uint64_t allocs_ = 0;
};

TEST(TrainAlloc, WorkerEpisodeReplayIsAllocationFreeInsideDecideAndEvents) {
  // Episode 2 is an exact replay of episode 1 (same policy parameters, same
  // env rng seed, same simulator seed). reserve() pre-sizes every slot to
  // the same shape — necessary because drain releases slots in completion
  // order while acquisition pops the free list LIFO, so the replay pairs
  // each flow with a *different* recycled slot; organic warming only sizes
  // each slot for the flows it happened to host. With uniform pools the
  // per-step path must not allocate at all. (The episode has ~131 flows,
  // <= 27 decisions each; the bounds below leave ~2x headroom.)
  const sim::Scenario scenario = sim::make_base_scenario(2).with_end_time(600.0);
  const std::size_t max_degree = scenario.network().max_degree();
  const rl::ActorCritic policy = make_policy(scenario);
  rl::TrajectoryBuffer buffer(0.99);
  buffer.reserve(/*max_flows=*/256, /*max_steps_per_flow=*/32,
                 core::observation_dim(max_degree));
  rl::Batch batch;

  const auto run_episode = [&](std::uint64_t* decide_allocs, std::uint64_t* event_allocs,
                               std::uint64_t* calls) {
    core::TrainingEnv env(policy, buffer, core::RewardConfig{}, max_degree, util::Rng(7),
                          {}, /*record_behavior_logp=*/true);
    AllocCountingCoordinator coordinator(env);
    AllocCountingObserver observer(env);
    sim::Simulator sim(scenario, /*seed=*/17);
    sim.run(coordinator, &observer);
    buffer.truncate_all();
    buffer.drain_into(batch, policy, policy.config().obs_dim, /*with_behavior_logp=*/true);
    if (decide_allocs != nullptr) *decide_allocs = coordinator.allocs();
    if (event_allocs != nullptr) *event_allocs = observer.allocs();
    if (calls != nullptr) *calls = coordinator.calls();
  };

  run_episode(nullptr, nullptr, nullptr);  // warm

  std::uint64_t decide_allocs = 0;
  std::uint64_t event_allocs = 0;
  std::uint64_t calls = 0;
  run_episode(&decide_allocs, &event_allocs, &calls);
  EXPECT_EQ(decide_allocs, 0u);
  EXPECT_EQ(event_allocs, 0u);
  EXPECT_GT(calls, 50u) << "scenario too short to exercise steady state";
  EXPECT_GT(batch.size(), 0u);
}

}  // namespace
}  // namespace dosc
