// Conservative PDES (sim/partition.hpp + sim/parallel.hpp): partition
// invariants, trace-replay fidelity, and the exactness contract — a K-way
// sharded episode dispatches, per partition, exactly the events the
// sequential engine routes to that partition (digest equality), produces
// bit-identical episode metrics, and stays invariant-clean per LP.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "baselines/shortest_path.hpp"
#include "check/auditor.hpp"
#include "check/corpus.hpp"
#include "check/digest.hpp"
#include "sim/parallel.hpp"
#include "sim/partition.hpp"
#include "sim/simulator.hpp"

using namespace dosc;

namespace {

constexpr std::uint64_t kSeed = 20260807;
constexpr double kHorizon = 600.0;

sim::Scenario corpus_scenario(const std::string& name) {
  return check::CorpusGenerator::make(name).with_end_time(kHorizon);
}

}  // namespace

TEST(Partition, CoversEveryNodeExactlyOnce) {
  const sim::Scenario scenario = corpus_scenario("ft_k4_steady");
  const net::Network& network = scenario.network();
  for (std::uint32_t k : {2u, 4u}) {
    const sim::Partition part = sim::Partition::build(scenario, k);
    ASSERT_EQ(part.num_parts(), k);
    std::set<net::NodeId> seen;
    for (std::uint32_t p = 0; p < k; ++p) {
      EXPECT_FALSE(part.nodes_of(p).empty()) << "partition " << p << " empty at k=" << k;
      for (net::NodeId v : part.nodes_of(p)) {
        EXPECT_EQ(part.part_of(v), p);
        EXPECT_TRUE(seen.insert(v).second) << "node " << v << " owned twice";
      }
    }
    EXPECT_EQ(seen.size(), network.num_nodes());
    EXPECT_GE(part.imbalance(), 1.0);
  }
}

TEST(Partition, CutLinksAndLookaheadAreConsistent) {
  const sim::Scenario scenario = corpus_scenario("wan_100_steady");
  const net::Network& network = scenario.network();
  const sim::Partition part = sim::Partition::build(scenario, 4);

  double min_delay = std::numeric_limits<double>::infinity();
  std::size_t cut_count = 0;
  for (net::LinkId l = 0; l < network.num_links(); ++l) {
    const bool crosses =
        part.part_of(network.link(l).a) != part.part_of(network.link(l).b);
    EXPECT_EQ(part.is_cut(l), crosses) << "link " << l;
    if (crosses) {
      ++cut_count;
      min_delay = std::min(min_delay, network.link(l).delay);
      // The owner dispatches the link's failure events: deterministically
      // the partition of the lower endpoint id.
      const net::NodeId lo = std::min(network.link(l).a, network.link(l).b);
      EXPECT_EQ(part.link_owner(l), part.part_of(lo));
    } else {
      EXPECT_EQ(part.link_owner(l), part.part_of(network.link(l).a));
    }
  }
  EXPECT_EQ(part.edge_cut(), cut_count);
  EXPECT_EQ(part.cut_links().size(), cut_count);
  EXPECT_GT(cut_count, 0u);
  EXPECT_EQ(part.min_cut_delay(), min_delay);
  EXPECT_GT(part.min_cut_delay(), 0.0);

  // Halo of p: remote nodes adjacent to p, each reachable over some cut link.
  for (std::uint32_t p = 0; p < part.num_parts(); ++p) {
    for (net::NodeId v : part.halo_of(p)) EXPECT_NE(part.part_of(v), p);
  }
}

TEST(Partition, SinglePartitionHasNoCut) {
  const sim::Scenario scenario = corpus_scenario("ft_k4_steady");
  const sim::Partition part = sim::Partition::build(scenario, 1);
  EXPECT_EQ(part.num_parts(), 1u);
  EXPECT_EQ(part.edge_cut(), 0u);
  EXPECT_TRUE(std::isinf(part.min_cut_delay()));
}

TEST(Partition, ClampsToNodeCountAndRejectsZero) {
  const sim::Scenario scenario = corpus_scenario("ft_k4_steady");
  const sim::Partition part =
      sim::Partition::build(scenario, 10 * static_cast<std::uint32_t>(
                                              scenario.network().num_nodes()));
  EXPECT_LE(part.num_parts(), scenario.network().num_nodes());
  EXPECT_THROW(sim::Partition::build(scenario, 0), std::invalid_argument);
}

TEST(TrafficTrace, SinglePartitionReplayMatchesSequentialFullDigest) {
  // K=1 exercises the trace-replay machinery with nothing else (no cut, no
  // migration): the one LP must dispatch the sequential engine's event
  // stream bit-for-bit, including the global seq numbers.
  for (const char* name : {"ft_k4_steady", "wan_100_steady"}) {
    const sim::Scenario scenario = corpus_scenario(name);

    sim::Simulator seq(scenario, kSeed);
    check::EventDigest seq_digest;
    seq.set_audit_hook(&seq_digest);
    baselines::ShortestPathCoordinator seq_coord;
    const sim::SimMetrics seq_metrics = seq.run(seq_coord);

    sim::ParallelSimulator psim(scenario, kSeed, 1);
    EXPECT_EQ(psim.trace().num_flows(), seq_metrics.generated);
    check::EventDigest lp_digest;
    psim.lp(0).set_audit_hook(&lp_digest);
    baselines::ShortestPathCoordinator par_coord;
    const sim::SimMetrics par_metrics = psim.run({&par_coord});

    EXPECT_EQ(lp_digest.digest(), seq_digest.digest()) << name;
    EXPECT_EQ(lp_digest.events(), seq_digest.events()) << name;
    EXPECT_EQ(par_metrics.generated, seq_metrics.generated) << name;
    EXPECT_EQ(par_metrics.succeeded, seq_metrics.succeeded) << name;
    EXPECT_EQ(par_metrics.dropped, seq_metrics.dropped) << name;
  }
}

TEST(ParallelSimulator, KWayMatchesSequentialPerPartition) {
  // The headline exactness check: for K in {1, 2, 4}, every partition's
  // event digest equals the sequential engine's events routed to that
  // partition, the merged metrics are identical, and each LP passes the
  // invariant audit in partitioned mode.
  for (const char* name : {"ft_k4_steady", "wan_100_steady"}) {
    const sim::Scenario scenario = corpus_scenario(name);

    for (std::uint32_t k : {1u, 2u, 4u}) {
      sim::ParallelSimulator psim(scenario, kSeed, k);
      ASSERT_EQ(psim.num_lps(), k) << name;

      // Sequential reference, events routed through the same partition.
      sim::Simulator seq(scenario, kSeed);
      check::PartitionedEventDigest seq_digest(psim.partition());
      seq.set_audit_hook(&seq_digest);
      baselines::ShortestPathCoordinator seq_coord;
      const sim::SimMetrics seq_metrics = seq.run(seq_coord);

      std::vector<check::EventDigest> lp_digests(
          k, check::EventDigest(check::EventDigest::Mode::kPartitionLocal));
      check::AuditorOptions audit_options;
      audit_options.partitioned = true;
      std::vector<check::InvariantAuditor> auditors(k, check::InvariantAuditor(audit_options));
      std::vector<check::HookChain> hooks(k);
      std::vector<baselines::ShortestPathCoordinator> coords(k);
      std::vector<sim::Coordinator*> coord_ptrs;
      std::vector<sim::FlowObserver*> observer_ptrs;
      for (std::uint32_t p = 0; p < k; ++p) {
        hooks[p].add(&auditors[p]);
        hooks[p].add(&lp_digests[p]);
        psim.lp(p).set_audit_hook(&hooks[p]);
        coord_ptrs.push_back(&coords[p]);
        observer_ptrs.push_back(&auditors[p]);
      }
      const sim::SimMetrics par_metrics = psim.run(coord_ptrs, observer_ptrs);

      std::uint64_t lp_events = 0;
      for (std::uint32_t p = 0; p < k; ++p) {
        EXPECT_EQ(lp_digests[p].digest(), seq_digest.digest(p))
            << name << " k=" << k << " partition " << p;
        EXPECT_EQ(lp_digests[p].events(), seq_digest.events(p))
            << name << " k=" << k << " partition " << p;
        EXPECT_TRUE(auditors[p].ok())
            << name << " k=" << k << " partition " << p << ": " << auditors[p].report();
        lp_events += lp_digests[p].events();
      }
      EXPECT_GT(lp_events, 0u);

      EXPECT_EQ(par_metrics.generated, seq_metrics.generated) << name << " k=" << k;
      EXPECT_EQ(par_metrics.succeeded, seq_metrics.succeeded) << name << " k=" << k;
      EXPECT_EQ(par_metrics.dropped, seq_metrics.dropped) << name << " k=" << k;
      for (std::size_t r = 0; r < sim::kNumDropReasons; ++r) {
        EXPECT_EQ(par_metrics.drops_by_reason[r], seq_metrics.drops_by_reason[r])
            << name << " k=" << k << " reason " << r;
      }
      EXPECT_EQ(par_metrics.e2e_delay.count(), seq_metrics.e2e_delay.count())
          << name << " k=" << k;
      EXPECT_EQ(par_metrics.e2e_delay.mean(), seq_metrics.e2e_delay.mean())
          << name << " k=" << k;

      const sim::ParallelSimulator::Stats& stats = psim.stats();
      EXPECT_EQ(stats.lps, k);
      if (k > 1) {
        EXPECT_GT(stats.windows, 0u) << name << " k=" << k;
        EXPECT_GT(stats.transfers, 0u)
            << name << " k=" << k << ": no flow ever crossed a partition";
      }
    }
  }
}

TEST(ParallelSimulator, RejectsZeroPartitionsAndSecondRun) {
  const sim::Scenario scenario = corpus_scenario("ft_k4_steady");
  EXPECT_THROW(sim::ParallelSimulator(scenario, kSeed, 0), std::invalid_argument);

  sim::ParallelSimulator psim(scenario, kSeed, 2);
  std::vector<baselines::ShortestPathCoordinator> coords(psim.num_lps());
  std::vector<sim::Coordinator*> coord_ptrs;
  for (auto& c : coords) coord_ptrs.push_back(&c);
  psim.run(coord_ptrs);
  EXPECT_THROW(psim.run(coord_ptrs), std::logic_error);
  // Wrong coordinator count is rejected before any thread starts.
  sim::ParallelSimulator fresh(scenario, kSeed, 2);
  std::vector<sim::Coordinator*> too_few{coord_ptrs.front()};
  EXPECT_THROW(fresh.run(too_few), std::invalid_argument);
}
