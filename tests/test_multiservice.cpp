// Multiple services (the paper: "we successfully tested our approach with
// multiple services" — Sec. V-A1). Two chains of different lengths share
// the substrate; the DRL observation normalises progress by each flow's own
// chain length, so one policy serves both.
#include <gtest/gtest.h>

#include "core/observation.hpp"
#include "core/trainer.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace dosc::sim {
namespace {

/// Catalog with a 1-component "cache" service and a 3-component "video"
/// service sharing component implementations.
ServiceCatalog two_service_catalog() {
  ServiceCatalog catalog;
  const ComponentId fw = catalog.add_component({.name = "fw", .processing_delay = 5.0});
  const ComponentId ids = catalog.add_component({.name = "ids", .processing_delay = 5.0});
  const ComponentId video = catalog.add_component({.name = "video", .processing_delay = 5.0});
  catalog.add_service({"video", {fw, ids, video}});
  catalog.add_service({"cache", {fw}});
  return catalog;
}

Scenario two_service_scenario(double end_time) {
  ScenarioConfig config;
  config.ingress = {0};
  config.egress = 2;
  config.end_time = end_time;
  config.traffic = traffic::TrafficSpec::poisson(8.0);
  config.node_cap_lo = config.node_cap_hi = 10.0;
  config.link_cap_lo = config.link_cap_hi = 10.0;
  config.flows = {FlowTemplate{.service = 0, .deadline = 100.0, .weight = 1.0},
                  FlowTemplate{.service = 1, .deadline = 100.0, .weight = 1.0}};
  return Scenario(config, two_service_catalog(), test::line3());
}

TEST(MultiService, BothChainsCompleteUnderGreedyProcessing) {
  const Scenario scenario = two_service_scenario(600.0);
  std::size_t short_flows = 0;
  std::size_t long_flows = 0;
  test::LambdaCoordinator coordinator(
      [&](const Simulator& sim, const Flow& flow, net::NodeId node) -> int {
        if (flow.chain_pos == 0 && node == flow.ingress) {
          (sim.service_of(flow).length() == 1 ? short_flows : long_flows) += 1;
        }
        if (!sim.fully_processed(flow)) return 0;
        return node == 0 ? 1 : 2;
      });
  Simulator sim(scenario, 3);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_GT(short_flows, 10u);
  EXPECT_GT(long_flows, 10u);
  EXPECT_DOUBLE_EQ(metrics.success_ratio(), 1.0);
  // Short-chain flows finish in 5 + 4 ms, long ones in 15 + 4 ms.
  // (Poisson arrival times are irrational, so delays carry float dust.)
  EXPECT_NEAR(metrics.e2e_delay.min(), 9.0, 1e-9);
  EXPECT_NEAR(metrics.e2e_delay.max(), 19.0, 1e-9);
}

TEST(MultiService, ObservationProgressIsPerChain) {
  const Scenario scenario = two_service_scenario(100.0);
  core::ObservationBuilder builder(scenario.network().max_degree());
  std::vector<std::pair<std::size_t, double>> progress;  // (chain length, p_hat)
  test::LambdaCoordinator coordinator(
      [&](const Simulator& sim, const Flow& flow, net::NodeId node) -> int {
        progress.emplace_back(sim.service_of(flow).length(),
                              builder.build(sim, flow, node)[0]);
        if (!sim.fully_processed(flow)) return 0;
        return node == 0 ? 1 : 2;
      });
  Simulator sim(scenario, 4);
  sim.run(coordinator);
  bool saw_third = false;
  for (const auto& [len, p] : progress) {
    if (len == 1) {
      // Single-component service: progress is 0 or 1, never fractional.
      EXPECT_TRUE(p == 0.0 || p == 1.0);
    } else if (p > 0.3 && p < 0.4) {
      saw_third = true;  // 1/3 progress only exists for the long chain
    }
  }
  EXPECT_TRUE(saw_third);
}

TEST(MultiService, DrlTrainsAcrossServiceMix) {
  const Scenario scenario = two_service_scenario(500.0);
  core::TrainingConfig config;
  config.hidden = {16, 16};
  config.num_seeds = 1;
  config.parallel_envs = 2;
  config.iterations = 40;
  config.train_episode_time = 500.0;
  config.eval_episodes = 2;
  config.eval_episode_time = 500.0;
  const core::TrainedPolicy policy = core::train_distributed_policy(scenario, config);
  const rl::ActorCritic net = policy.instantiate();
  const core::EvalResult eval =
      core::evaluate_policy(scenario, net, config.reward, 2, 500.0, 99);
  EXPECT_GT(eval.success_ratio, 0.5);
}

TEST(MultiService, InstanceSharingAcrossServices) {
  // Both services start with the same "fw" component: one instance at the
  // ingress serves flows of both services (x is per component, not per
  // service).
  const Scenario scenario = two_service_scenario(60.0);
  std::size_t fw_instances_seen = 0;
  test::LambdaCoordinator coordinator(
      [&](const Simulator& sim, const Flow& flow, net::NodeId node) -> int {
        if (!sim.fully_processed(flow)) {
          if (sim.requested_component(flow) == 0 && sim.instance_available(node, 0)) {
            ++fw_instances_seen;
          }
          return 0;
        }
        return node == 0 ? 1 : 2;
      });
  Simulator sim(scenario, 5);
  sim.run(coordinator);
  EXPECT_GT(fw_instances_seen, 0u);
}

}  // namespace
}  // namespace dosc::sim
