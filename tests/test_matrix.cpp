#include <gtest/gtest.h>

#include <cmath>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace dosc::nn {
namespace {

Matrix from_rows(std::initializer_list<std::initializer_list<double>> rows) {
  Matrix m(rows.size(), rows.begin()->size());
  std::size_t r = 0;
  for (const auto& row : rows) {
    std::size_t c = 0;
    for (const double v : row) m(r, c++) = v;
    ++r;
  }
  return m;
}

TEST(Matrix, MatmulKnownResult) {
  const Matrix a = from_rows({{1, 2}, {3, 4}});
  const Matrix b = from_rows({{5, 6}, {7, 8}});
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
  EXPECT_THROW(matmul_tn(Matrix(2, 3), Matrix(3, 2)), std::invalid_argument);
  EXPECT_THROW(matmul_nt(Matrix(2, 3), Matrix(2, 2)), std::invalid_argument);
}

TEST(Matrix, TransposedVariantsAgree) {
  util::Rng rng(1);
  Matrix a(4, 3);
  Matrix b(4, 5);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal(0, 1);
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.normal(0, 1);
  // A^T B computed directly vs via explicit transpose.
  const Matrix expected = matmul(transpose(a), b);
  const Matrix got = matmul_tn(a, b);
  ASSERT_EQ(got.rows(), expected.rows());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-12);
  }
  // A B^T.
  Matrix c(5, 3);
  for (std::size_t i = 0; i < c.size(); ++i) c.data()[i] = rng.normal(0, 1);
  const Matrix expected2 = matmul(a, transpose(c));
  const Matrix got2 = matmul_nt(a, c);
  for (std::size_t i = 0; i < got2.size(); ++i) {
    EXPECT_NEAR(got2.data()[i], expected2.data()[i], 1e-12);
  }
}

TEST(Matrix, ElementwiseOps) {
  Matrix a = from_rows({{1, 2}, {3, 4}});
  const Matrix b = from_rows({{10, 20}, {30, 40}});
  add_scaled(a, b, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 24.0);

  Matrix e = from_rows({{2, 2}});
  ema_update(e, from_rows({{4, 0}}), 0.75);
  EXPECT_DOUBLE_EQ(e(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(e(0, 1), 1.5);

  const Matrix h = hadamard(from_rows({{2, 3}}), from_rows({{4, 5}}));
  EXPECT_DOUBLE_EQ(h(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(h(0, 1), 15.0);
}

TEST(Matrix, RowVectorAndColumnSums) {
  Matrix a = from_rows({{1, 2}, {3, 4}});
  add_row_vector(a, from_rows({{10, 20}}));
  EXPECT_DOUBLE_EQ(a(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 24.0);
  const Matrix s = column_sums(a);
  EXPECT_DOUBLE_EQ(s(0, 0), 24.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 46.0);
}

TEST(Matrix, Norms) {
  const Matrix a = from_rows({{3, 4}});
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
}

TEST(Matrix, Identity) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
  }
}

TEST(Matrix, XavierWithinLimit) {
  util::Rng rng(2);
  const Matrix w = Matrix::xavier(20, 30, rng);
  const double limit = std::sqrt(6.0 / 50.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(w.data()[i]), limit);
  }
}

TEST(Cholesky, SolvesSpdSystem) {
  // M = L L^T for L = [[2,0],[1,3]] -> M = [[4,2],[2,10]].
  const Matrix m = from_rows({{4, 2}, {2, 10}});
  const Matrix b = from_rows({{6}, {22}});
  const Matrix x = cholesky_solve(m, b, 0.0);
  // Check M x = b.
  const Matrix back = matmul(m, x);
  EXPECT_NEAR(back(0, 0), 6.0, 1e-10);
  EXPECT_NEAR(back(1, 0), 22.0, 1e-10);
}

TEST(Cholesky, DampingActsAsRidge) {
  const Matrix m = from_rows({{1, 0}, {0, 1}});
  const Matrix b = from_rows({{2}, {4}});
  const Matrix x = cholesky_solve(m, b, 1.0);  // (M + I) x = b -> x = b/2
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
}

TEST(Cholesky, RecoversFromSingularByIncreasingDamping) {
  // Singular matrix: rank 1. With damping escalation the solve must still
  // return something finite.
  const Matrix m = from_rows({{1, 1}, {1, 1}});
  const Matrix b = from_rows({{1}, {1}});
  const Matrix x = cholesky_solve(m, b, 0.0);
  EXPECT_TRUE(std::isfinite(x(0, 0)));
  EXPECT_TRUE(std::isfinite(x(1, 0)));
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(cholesky_solve(Matrix(2, 3), Matrix(2, 1), 0.0), std::invalid_argument);
  EXPECT_THROW(cholesky_solve(Matrix(2, 2), Matrix(3, 1), 0.0), std::invalid_argument);
}

TEST(Cholesky, MultipleRightHandSides) {
  const Matrix m = from_rows({{4, 2}, {2, 10}});
  const Matrix b = from_rows({{6, 4}, {22, 2}});
  const Matrix x = cholesky_solve(m, b, 0.0);
  const Matrix back = matmul(m, x);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back.data()[i], b.data()[i], 1e-10);
  }
}

}  // namespace
}  // namespace dosc::nn
