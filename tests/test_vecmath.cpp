#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "nn/vecmath.hpp"
#include "util/rng.hpp"

namespace dosc::nn {
namespace {

// The project tanh replaced std::tanh as the Mlp activation so the
// activation loops vectorize (DESIGN.md section 13.4). These tests pin the
// two properties everything downstream rests on: scalar/bulk bit-identity
// (the gemv fused epilogue vs the batch forward's array application) and
// near-libm accuracy across the full input range.

TEST(Vecmath, ScalarAndArrayApplicationsAreBitIdentical) {
  util::Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 4096; ++i) xs.push_back(rng.normal(0.0, 4.0));
  for (int exp10 = -300; exp10 <= 2; exp10 += 7) {
    xs.push_back(std::pow(10.0, exp10));
    xs.push_back(-std::pow(10.0, exp10));
  }
  std::vector<double> bulk = xs;
  vecmath::tanh_inplace(bulk.data(), bulk.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double one = vecmath::tanh1(xs[i]);
    EXPECT_EQ(one, bulk[i]) << "x=" << xs[i];
  }
}

TEST(Vecmath, MatchesLibmTanhToAFewUlp) {
  util::Rng rng(12);
  double max_abs = 0.0;
  double max_rel = 0.0;
  for (int i = 0; i < 200000; ++i) {
    double x = rng.normal(0.0, 6.0);
    if (i % 3 == 0) x *= 1e-6;
    if (i % 997 == 0) x *= 1e-200;
    const double ref = std::tanh(x);
    const double got = vecmath::tanh1(x);
    const double abs = std::fabs(got - ref);
    max_abs = std::max(max_abs, abs);
    if (ref != 0.0) max_rel = std::max(max_rel, abs / std::fabs(ref));
  }
  EXPECT_LT(max_abs, 5e-16);
  EXPECT_LT(max_rel, 2e-15);
}

TEST(Vecmath, OddSymmetryIsExact) {
  util::Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal(0.0, 5.0);
    EXPECT_EQ(vecmath::tanh1(-x), -vecmath::tanh1(x)) << "x=" << x;
  }
}

TEST(Vecmath, EdgeCases) {
  EXPECT_EQ(vecmath::tanh1(0.0), 0.0);
  EXPECT_FALSE(std::signbit(vecmath::tanh1(0.0)));
  EXPECT_EQ(vecmath::tanh1(-0.0), -0.0);
  EXPECT_TRUE(std::signbit(vecmath::tanh1(-0.0)));
  // Below tanh's curvature scale the function is the identity in double.
  EXPECT_EQ(vecmath::tanh1(1e-300), 1e-300);
  EXPECT_EQ(vecmath::tanh1(-1e-300), -1e-300);
  // Saturation: exactly 1.0 from ~18.7 out, through infinity.
  EXPECT_EQ(vecmath::tanh1(19.0), 1.0);
  EXPECT_EQ(vecmath::tanh1(700.0), 1.0);
  EXPECT_EQ(vecmath::tanh1(std::numeric_limits<double>::infinity()), 1.0);
  EXPECT_EQ(vecmath::tanh1(-std::numeric_limits<double>::infinity()), -1.0);
  EXPECT_TRUE(std::isnan(vecmath::tanh1(std::numeric_limits<double>::quiet_NaN())));
}

TEST(Vecmath, ReportsDispatchedIsa) {
  const std::string isa = vecmath::tanh_isa();
  EXPECT_TRUE(isa == "avx2+fma" || isa == "baseline") << isa;
}

}  // namespace
}  // namespace dosc::nn
