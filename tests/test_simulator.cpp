// Flow-lifecycle semantics of the discrete-event simulator, verified on
// hand-computable scenarios: delays, drops (all four reasons), resource
// holds and early release on expiry, instance startup/idle-timeout,
// parking, determinism, and periodic callbacks.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace dosc::sim {
namespace {

using test::LambdaCoordinator;
using test::RecordingObserver;
using test::ScriptedCoordinator;
using test::TinyScenarioOptions;
using test::tiny_scenario;

TEST(Simulator, HappyPathDelaysAddUp) {
  // line3: flow enters at node 0, processes c0 there (5 ms), is forwarded
  // over two 2 ms links to the egress (node 2): e2e = 5 + 2 + 2 = 9 ms.
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;  // exactly one flow (t = 10)
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);

  ScriptedCoordinator coordinator({0, 1, 2});
  RecordingObserver observer;
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator, &observer);

  EXPECT_EQ(metrics.generated, 1u);
  EXPECT_EQ(metrics.succeeded, 1u);
  EXPECT_EQ(metrics.dropped, 0u);
  EXPECT_EQ(metrics.decisions, 3u);
  EXPECT_DOUBLE_EQ(metrics.e2e_delay.mean(), 9.0);
  EXPECT_DOUBLE_EQ(metrics.success_ratio(), 1.0);
  ASSERT_EQ(observer.count(RecordingObserver::Event::Kind::kCompleted), 1u);
  // Completion fires at arrival (10) + 9.
  for (const auto& e : observer.events) {
    if (e.kind == RecordingObserver::Event::Kind::kCompleted) EXPECT_DOUBLE_EQ(e.time, 19.0);
  }
  EXPECT_EQ(observer.count(RecordingObserver::Event::Kind::kProcessed), 1u);
  EXPECT_EQ(observer.count(RecordingObserver::Event::Kind::kForwarded), 2u);
}

TEST(Simulator, IngressEqualsEgressCompletesAfterProcessing) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 0;
  options.end_time = 15.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ScriptedCoordinator coordinator({0});
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.succeeded, 1u);
  EXPECT_EQ(metrics.decisions, 1u);  // only the processing decision
  EXPECT_DOUBLE_EQ(metrics.e2e_delay.mean(), 5.0);
}

TEST(Simulator, NodeOverloadDrops) {
  TinyScenarioOptions options;
  options.node_capacity = 0.5;  // demand is 1.0
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ScriptedCoordinator coordinator({0});
  RecordingObserver observer;
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator, &observer);
  EXPECT_EQ(metrics.dropped, 1u);
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kNodeOverload)], 1u);
  EXPECT_DOUBLE_EQ(metrics.success_ratio(), 0.0);
}

TEST(Simulator, LinkOverloadDrops) {
  TinyScenarioOptions options;
  options.link_cap_lo = options.link_cap_hi = 0.5;  // rate is 1.0
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ScriptedCoordinator coordinator({1});  // forward immediately
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kLinkOverload)], 1u);
}

TEST(Simulator, InvalidActionDrops) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  // Node 0 has one neighbour; max_degree is 2 (node 1). Action 2 points at
  // a padded dummy neighbour of node 0 -> invalid.
  ScriptedCoordinator coordinator({2});
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kInvalidAction)], 1u);
}

TEST(Simulator, ActionBeyondDegreeDrops) {
  TinyScenarioOptions options;
  options.ingress = {1};
  options.egress = 2;
  options.end_time = 15.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ScriptedCoordinator coordinator({7});  // > Delta_G
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kInvalidAction)], 1u);
}

TEST(Simulator, DeadlineExpiryDropsAndReleasesResources) {
  // deadline 3 < processing delay 5: the flow expires mid-processing at
  // t_arrival + 3 and must release its node hold immediately — the next
  // flow (4 ms later) must observe a fully free node.
  TinyScenarioOptions options;
  options.node_capacity = 1.0;
  options.ingress = {0};
  options.egress = 2;
  options.deadline = 3.0;
  options.interarrival = 4.0;
  options.end_time = 8.0;  // flows at t = 4 and t = 8
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);

  std::vector<double> used_at_decision;
  LambdaCoordinator coordinator([&](const Simulator& sim, const Flow&, net::NodeId node) {
    used_at_decision.push_back(sim.node_used(node));
    return 0;
  });
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.generated, 2u);
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kExpired)], 2u);
  ASSERT_EQ(used_at_decision.size(), 2u);
  // Flow 1 expired at t=7 and released its hold (scheduled release was t=9),
  // so flow 2's decision at t=8 sees an idle node.
  EXPECT_DOUBLE_EQ(used_at_decision[0], 0.0);
  EXPECT_DOUBLE_EQ(used_at_decision[1], 0.0);
}

TEST(Simulator, ParkingDelaysAndPenalizes) {
  // The flow is processed at the ingress, then parked twice (action 0 on a
  // fully processed flow) before being forwarded: adds 2 * park_step.
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ScriptedCoordinator coordinator({0, 0, 0, 1, 2});
  RecordingObserver observer;
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator, &observer);
  EXPECT_EQ(metrics.succeeded, 1u);
  EXPECT_EQ(observer.count(RecordingObserver::Event::Kind::kParked), 2u);
  EXPECT_DOUBLE_EQ(metrics.e2e_delay.mean(), 9.0 + 2.0);
  EXPECT_EQ(metrics.decisions, 5u);
}

TEST(Simulator, StartupDelayAppliesOnlyToColdInstances) {
  // startup 3 ms: first flow waits for it; a second flow 10 ms later hits
  // the warm instance. idle_timeout is large enough to keep it alive.
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 25.0;  // flows at t = 10 and t = 20
  const Scenario scenario = tiny_scenario(
      test::line3(), test::one_component_catalog(5.0, /*startup=*/3.0, /*idle=*/100.0),
      options);
  ScriptedCoordinator coordinator({0, 1, 2, 0, 1, 2});
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.succeeded, 2u);
  // First: 3 + 5 + 4 = 12; second: 5 + 4 = 9.
  EXPECT_DOUBLE_EQ(metrics.e2e_delay.min(), 9.0);
  EXPECT_DOUBLE_EQ(metrics.e2e_delay.max(), 12.0);
}

TEST(Simulator, IdleInstancesAreRemovedAfterTimeout) {
  // idle_timeout 5: the instance placed for flow 1 (t=10, done t=15) must
  // be gone when flow 2 decides at t=30, but a flow arriving within the
  // timeout window (t=18 with interarrival 8... use 20) sees it.
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.interarrival = 20.0;
  options.end_time = 45.0;  // flows at t = 20 and t = 40
  const Scenario scenario = tiny_scenario(
      test::line3(), test::one_component_catalog(5.0, 0.0, /*idle=*/5.0), options);

  std::vector<bool> instance_seen;
  LambdaCoordinator coordinator(
      [&](const Simulator& sim, const Flow& flow, net::NodeId node) -> int {
        if (!sim.fully_processed(flow)) {
          instance_seen.push_back(sim.instance_available(node, 0));
          return 0;
        }
        return node == 0 ? 1 : 2;
      });
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.succeeded, 2u);
  ASSERT_EQ(instance_seen.size(), 2u);
  EXPECT_FALSE(instance_seen[0]);  // cold start for flow 1
  EXPECT_FALSE(instance_seen[1]);  // removed at t=25+5=30 < 40... removed by timeout
}

TEST(Simulator, WarmInstanceVisibleWithinTimeout) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.interarrival = 7.0;
  options.end_time = 15.0;  // flows at t = 7 and t = 14
  const Scenario scenario = tiny_scenario(
      test::line3(), test::one_component_catalog(5.0, 0.0, /*idle=*/50.0), options);
  std::vector<bool> instance_seen;
  LambdaCoordinator coordinator(
      [&](const Simulator& sim, const Flow& flow, net::NodeId node) -> int {
        if (!sim.fully_processed(flow)) {
          instance_seen.push_back(sim.instance_available(node, 0));
          return 0;
        }
        return node == 0 ? 1 : 2;
      });
  Simulator sim(scenario, 1);
  sim.run(coordinator);
  ASSERT_EQ(instance_seen.size(), 2u);
  EXPECT_FALSE(instance_seen[0]);
  EXPECT_TRUE(instance_seen[1]);  // placed at t=7, still warm at t=14
}

TEST(Simulator, ConcurrentFlowsShareLinkCapacity) {
  // Link capacity 1.5, flow rate 1: a flow occupies the link for
  // d_l + duration = 3 ms, so two forwards 1 ms apart collide.
  TinyScenarioOptions options;
  options.link_cap_lo = options.link_cap_hi = 1.5;
  options.ingress = {0, 0};  // two streams at the same ingress
  options.egress = 2;
  options.interarrival = 10.0;
  options.end_time = 15.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  // Both flows arrive at t=10 and are forwarded immediately back-to-back:
  // the second exceeds the shared capacity and drops. The first flow is
  // then sent BACK over the same link (action 1 at node 1) while its own
  // forward hold is still active — the reverse direction shares the same
  // capacity, so it drops too.
  ScriptedCoordinator coordinator({1});
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.generated, 2u);
  EXPECT_EQ(metrics.succeeded, 0u);
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(DropReason::kLinkOverload)], 2u);
}

TEST(Simulator, GeneratedFlowCountMatchesFixedArrivals) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.interarrival = 10.0;
  options.end_time = 100.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ScriptedCoordinator coordinator({0, 1, 2, 0, 1, 2, 0, 1, 2});
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator);
  EXPECT_EQ(metrics.generated, 10u);  // t = 10, 20, ..., 100
}

TEST(Simulator, DeterministicAcrossRuns) {
  const Scenario scenario = sim::make_base_scenario(2, traffic::TrafficSpec::poisson(10.0),
                                                    100.0, "abilene", 1000.0);
  auto run_once = [&](std::uint64_t seed) {
    Simulator sim(scenario, seed);
    ScriptedCoordinator coordinator({0, 1, 2});
    return sim.run(coordinator);
  };
  const SimMetrics a = run_once(7);
  const SimMetrics b = run_once(7);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_DOUBLE_EQ(a.e2e_delay.mean(), b.e2e_delay.mean());
  // Different seed -> different traffic (with overwhelming probability).
  const SimMetrics c = run_once(8);
  EXPECT_NE(a.generated, c.generated);
}

TEST(Simulator, RunTwiceThrows) {
  TinyScenarioOptions options;
  options.end_time = 15.0;
  options.egress = 2;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ScriptedCoordinator coordinator({0});
  Simulator sim(scenario, 1);
  sim.run(coordinator);
  EXPECT_THROW(sim.run(coordinator), std::logic_error);
}

TEST(Simulator, PeriodicCallbacksFireAtInterval) {
  class PeriodicCoordinator final : public Coordinator {
   public:
    int decide(const Simulator&, const Flow&, net::NodeId) override { return 0; }
    double periodic_interval() const override { return 10.0; }
    void on_periodic(const Simulator&, double time) override { times.push_back(time); }
    std::vector<double> times;
  };
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 0;
  options.end_time = 50.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  PeriodicCoordinator coordinator;
  Simulator sim(scenario, 1);
  sim.run(coordinator);
  ASSERT_EQ(coordinator.times.size(), 5u);
  for (std::size_t i = 0; i < coordinator.times.size(); ++i) {
    EXPECT_DOUBLE_EQ(coordinator.times[i], 10.0 * static_cast<double>(i + 1));
  }
}

TEST(Simulator, PeriodicBeyondHorizonNeverFires) {
  // An interval longer than the episode horizon can never fire, so the
  // first kPeriodic event must not even be seeded (the old engine queued it
  // unconditionally and relied on an in-handler guard).
  class PeriodicCoordinator final : public Coordinator {
   public:
    int decide(const Simulator&, const Flow&, net::NodeId) override { return 0; }
    double periodic_interval() const override { return 1000.0; }
    void on_periodic(const Simulator&, double) override { ++calls; }
    std::size_t calls = 0;
  };
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 0;
  options.end_time = 50.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  PeriodicCoordinator coordinator;
  Simulator sim(scenario, 1);
  sim.run(coordinator);
  EXPECT_EQ(coordinator.calls, 0u);
  EXPECT_EQ(sim.events_by_kind()[static_cast<std::size_t>(EventKind::kPeriodic)], 0u);
}

TEST(Simulator, ComponentDemandAndProgress) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  std::vector<double> demands;
  std::vector<bool> processed_state;
  LambdaCoordinator coordinator(
      [&](const Simulator& sim, const Flow& flow, net::NodeId node) -> int {
        demands.push_back(sim.component_demand(flow));
        processed_state.push_back(sim.fully_processed(flow));
        if (!sim.fully_processed(flow)) return 0;
        return node == 0 ? 1 : 2;
      });
  Simulator sim(scenario, 1);
  sim.run(coordinator);
  ASSERT_EQ(demands.size(), 3u);
  EXPECT_DOUBLE_EQ(demands[0], 1.0);  // requesting c0, rate 1
  EXPECT_DOUBLE_EQ(demands[1], 0.0);  // fully processed
  EXPECT_FALSE(processed_state[0]);
  EXPECT_TRUE(processed_state[1]);
}

TEST(Simulator, DropReasonNames) {
  EXPECT_STREQ(drop_reason_name(DropReason::kNodeOverload), "node_overload");
  EXPECT_STREQ(drop_reason_name(DropReason::kLinkOverload), "link_overload");
  EXPECT_STREQ(drop_reason_name(DropReason::kInvalidAction), "invalid_action");
  EXPECT_STREQ(drop_reason_name(DropReason::kExpired), "expired");
}

TEST(Simulator, RequestedComponentThrowsWhenDone) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  bool checked = false;
  LambdaCoordinator coordinator(
      [&](const Simulator& sim, const Flow& flow, net::NodeId node) -> int {
        if (sim.fully_processed(flow)) {
          EXPECT_THROW(sim.requested_component(flow), std::logic_error);
          checked = true;
          return node == 0 ? 1 : 2;
        }
        return 0;
      });
  Simulator sim(scenario, 1);
  sim.run(coordinator);
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace dosc::sim
