// Allocation accounting for the simulator event loop.
//
// The zero-allocation contract (the simulation-side sibling of
// test_nn_alloc): once a stationary episode has warmed every pool — flow
// slots, hold slots, free lists, the event heap's vector, HoldList spill
// buffers — continued event processing performs NO heap allocation. This
// binary replaces the global operator new/delete with counting versions
// and asserts the count measured inside one episode stays flat from a
// warm-up point to the last completion.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

void* counted_alloc(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace dosc::sim {
namespace {

/// Stateless line3 routing without any per-decision allocation: process the
/// chain locally, then forward A->B->C.
class Line3Coordinator final : public Coordinator {
 public:
  int decide(const Simulator& sim, const Flow& flow, net::NodeId node) override {
    if (!sim.fully_processed(flow)) return 0;
    return node == 0 ? 1 : 2;
  }
};

/// Samples the global allocation counter at flow completions: the first
/// completion past `warmup_time` opens the measured region, the last one
/// closes it.
class AllocWindowObserver final : public FlowObserver {
 public:
  explicit AllocWindowObserver(double warmup_time) : warmup_time_(warmup_time) {}

  void on_completed(const Flow&, double t) override {
    const std::uint64_t n = g_news.load(std::memory_order_relaxed);
    if (t >= warmup_time_ && at_warmup_ == 0) at_warmup_ = n;
    at_end_ = n;
    ++completions_;
  }

  std::uint64_t at_warmup() const { return at_warmup_; }
  std::uint64_t at_end() const { return at_end_; }
  std::size_t completions() const { return completions_; }

 private:
  double warmup_time_;
  std::uint64_t at_warmup_ = 0;
  std::uint64_t at_end_ = 0;
  std::size_t completions_ = 0;
};

TEST(SimAlloc, CountingAllocatorSeesAllocations) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  volatile std::size_t n = 4096;
  double* p = new double[n];
  delete[] p;
  EXPECT_GT(g_news.load(std::memory_order_relaxed), before);
}

TEST(SimAlloc, EventLoopSteadyStateIsAllocationFree) {
  // Deterministic stationary load: fixed 2 ms interarrivals on line3, every
  // flow completes through the same 15 ms lifecycle, so after a few
  // lifetimes every pool and vector has reached its high-water capacity.
  test::TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 4000.0;
  options.deadline = 100.0;
  options.interarrival = 2.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  Line3Coordinator coordinator;
  AllocWindowObserver observer(/*warmup_time=*/400.0);
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator, &observer);

  ASSERT_GT(metrics.succeeded, 1000u);
  ASSERT_GT(observer.at_warmup(), 0u);
  // ~1800 completions (thousands of events: arrivals, hold releases,
  // processing, instance idle churn) inside the measured window — with
  // zero allocations.
  EXPECT_EQ(observer.at_end() - observer.at_warmup(), 0u);
}

TEST(SimAlloc, HeavyDropChurnIsAllocationFreeTooAfterWarmup) {
  // Expiry-drop churn exercises the other pool paths: early hold release,
  // free-list pushes, stale-event skipping, and heap compaction. None of
  // them may allocate at steady state either. Drops never fire the
  // completion observer, so the window is opened by the few flows that do
  // complete (deadline exactly at the lifecycle length lets alternating
  // flows through under capacity contention).
  test::TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 4000.0;
  options.deadline = 15.0;
  options.interarrival = 2.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  Line3Coordinator coordinator;
  AllocWindowObserver observer(/*warmup_time=*/400.0);
  Simulator sim(scenario, 1);
  const SimMetrics metrics = sim.run(coordinator, &observer);

  ASSERT_GT(metrics.generated, 1000u);
  if (observer.completions() < 10 || observer.at_warmup() == 0) {
    GTEST_SKIP() << "scenario produced too few completions to form a window";
  }
  EXPECT_EQ(observer.at_end() - observer.at_warmup(), 0u);
}

}  // namespace
}  // namespace dosc::sim
