// Wire protocol v1: exact round-trips for every field, and decode safety
// on malformed input — truncations at every length, trailing garbage,
// corrupted magic/version bytes, and random fuzz. The daemon's "never
// crash on a hostile datagram" guarantee starts here.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <random>

#include "serve/wire.hpp"

using namespace dosc::serve;

namespace {

wire::Request sample_request() {
  wire::Request r;
  r.request_id = 0x0123456789abcdefULL;
  r.cookie = 0xfedcba9876543210ULL;
  r.node = 11;
  r.egress = 7;
  r.service = 3;
  r.chain_pos = 2;
  r.rate = 1.25f;
  r.duration = 42.5f;
  r.deadline = 100.0f;
  r.elapsed = 17.75f;
  return r;
}

wire::Response sample_response() {
  wire::Response r;
  r.request_id = 0xdeadbeefcafef00dULL;
  r.cookie = 0x1122334455667788ULL;
  r.status = wire::Status::kInvalidRequest;
  r.action = 3;
  r.policy_version = 912;
  r.batch_size = 32;
  return r;
}

}  // namespace

TEST(ServeWire, RequestRoundTripAllFields) {
  const wire::Request in = sample_request();
  std::array<std::uint8_t, wire::kRequestSize> buf{};
  wire::encode_request(in, buf.data());

  wire::Request out;
  ASSERT_EQ(wire::decode_request(buf.data(), buf.size(), out), wire::DecodeError::kOk);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.cookie, in.cookie);
  EXPECT_EQ(out.node, in.node);
  EXPECT_EQ(out.egress, in.egress);
  EXPECT_EQ(out.service, in.service);
  EXPECT_EQ(out.chain_pos, in.chain_pos);
  EXPECT_EQ(out.rate, in.rate);
  EXPECT_EQ(out.duration, in.duration);
  EXPECT_EQ(out.deadline, in.deadline);
  EXPECT_EQ(out.elapsed, in.elapsed);
}

TEST(ServeWire, ResponseRoundTripAllFields) {
  const wire::Response in = sample_response();
  std::array<std::uint8_t, wire::kResponseSize> buf{};
  wire::encode_response(in, buf.data());

  wire::Response out;
  ASSERT_EQ(wire::decode_response(buf.data(), buf.size(), out), wire::DecodeError::kOk);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.cookie, in.cookie);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.action, in.action);
  EXPECT_EQ(out.policy_version, in.policy_version);
  EXPECT_EQ(out.batch_size, in.batch_size);
}

TEST(ServeWire, NonFiniteFloatsSurviveTheTrip) {
  wire::Request in = sample_request();
  in.rate = std::numeric_limits<float>::quiet_NaN();
  in.deadline = std::numeric_limits<float>::infinity();
  std::array<std::uint8_t, wire::kRequestSize> buf{};
  wire::encode_request(in, buf.data());
  wire::Request out;
  ASSERT_EQ(wire::decode_request(buf.data(), buf.size(), out), wire::DecodeError::kOk);
  EXPECT_TRUE(std::isnan(out.rate));
  EXPECT_TRUE(std::isinf(out.deadline));
}

TEST(ServeWire, TruncatedAtEveryLengthIsTooShort) {
  std::array<std::uint8_t, wire::kRequestSize> buf{};
  wire::encode_request(sample_request(), buf.data());
  for (std::size_t len = 0; len < wire::kRequestSize; ++len) {
    wire::Request out;
    EXPECT_EQ(wire::decode_request(buf.data(), len, out), wire::DecodeError::kTooShort)
        << "length " << len;
  }
  std::array<std::uint8_t, wire::kResponseSize> rbuf{};
  wire::encode_response(sample_response(), rbuf.data());
  for (std::size_t len = 0; len < wire::kResponseSize; ++len) {
    wire::Response out;
    EXPECT_EQ(wire::decode_response(rbuf.data(), len, out), wire::DecodeError::kTooShort)
        << "length " << len;
  }
}

TEST(ServeWire, OversizedDatagramIsBadLength) {
  std::array<std::uint8_t, wire::kMaxDatagram> buf{};
  wire::encode_request(sample_request(), buf.data());
  wire::Request out;
  EXPECT_EQ(wire::decode_request(buf.data(), wire::kRequestSize + 1, out),
            wire::DecodeError::kBadLength);
  EXPECT_EQ(wire::decode_request(buf.data(), wire::kMaxDatagram, out),
            wire::DecodeError::kBadLength);
}

TEST(ServeWire, CorruptedMagicAndVersionAreRejected) {
  std::array<std::uint8_t, wire::kRequestSize> buf{};
  wire::encode_request(sample_request(), buf.data());
  wire::Request out;

  for (std::size_t byte = 0; byte < 4; ++byte) {
    auto bad = buf;
    bad[byte] ^= 0xff;
    EXPECT_EQ(wire::decode_request(bad.data(), bad.size(), out), wire::DecodeError::kBadMagic)
        << "magic byte " << byte;
  }
  auto bad = buf;
  bad[4] = wire::kWireVersion + 1;
  EXPECT_EQ(wire::decode_request(bad.data(), bad.size(), out), wire::DecodeError::kBadVersion);
}

TEST(ServeWire, FlagsAndReservedBytesAreIgnored) {
  std::array<std::uint8_t, wire::kRequestSize> buf{};
  const wire::Request in = sample_request();
  wire::encode_request(in, buf.data());
  buf[5] = 0xaa;  // flags
  buf[6] = 0xbb;  // reserved
  buf[7] = 0xcc;
  wire::Request out;
  ASSERT_EQ(wire::decode_request(buf.data(), buf.size(), out), wire::DecodeError::kOk);
  EXPECT_EQ(out.request_id, in.request_id);
}

TEST(ServeWire, LittleEndianLayoutIsPinned) {
  // The format is an external contract: byte offsets must never drift.
  wire::Request in;
  in.request_id = 0x0102030405060708ULL;
  in.node = 0xab01;
  std::array<std::uint8_t, wire::kRequestSize> buf{};
  wire::encode_request(in, buf.data());
  EXPECT_EQ(buf[0], 'D');
  EXPECT_EQ(buf[1], 'S');
  EXPECT_EQ(buf[2], 'R');
  EXPECT_EQ(buf[3], 'Q');
  EXPECT_EQ(buf[4], wire::kWireVersion);
  EXPECT_EQ(buf[8], 0x08);  // request_id little-endian
  EXPECT_EQ(buf[15], 0x01);
  EXPECT_EQ(buf[24], 0x01);  // node
  EXPECT_EQ(buf[25], 0xab);
}

TEST(ServeWire, RandomFuzzNeverCrashesAndMostlyRejects) {
  std::mt19937_64 rng(20260807);
  std::array<std::uint8_t, wire::kMaxDatagram> buf{};
  std::size_t accepted = 0;
  for (int iter = 0; iter < 200000; ++iter) {
    const std::size_t len = rng() % (wire::kMaxDatagram + 1);
    for (std::size_t i = 0; i < len; ++i) buf[i] = static_cast<std::uint8_t>(rng());
    wire::Request req;
    if (wire::decode_request(buf.data(), len, req) == wire::DecodeError::kOk) ++accepted;
    wire::Response resp;
    (void)wire::decode_response(buf.data(), len, resp);
  }
  // A random 48-byte datagram passes only with the right magic+version:
  // ~2^-40. Seeing even one accept would indicate a broken check.
  EXPECT_EQ(accepted, 0u);
}

TEST(ServeWire, DecodeErrorNamesAreStable) {
  EXPECT_STREQ(wire::decode_error_name(wire::DecodeError::kOk), "ok");
  EXPECT_STREQ(wire::decode_error_name(wire::DecodeError::kTooShort), "too_short");
  EXPECT_STREQ(wire::decode_error_name(wire::DecodeError::kBadLength), "bad_length");
  EXPECT_STREQ(wire::decode_error_name(wire::DecodeError::kBadMagic), "bad_magic");
  EXPECT_STREQ(wire::decode_error_name(wire::DecodeError::kBadVersion), "bad_version");
}
