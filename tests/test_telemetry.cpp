#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dosc::telemetry {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(Histogram, BucketBoundaries) {
  const HistogramConfig config;  // min 0.01, max 1e7, 16 per decade
  Histogram h(config);
  // Underflow bucket: values below min_value, NaN, and negatives.
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(0.009), 0u);
  EXPECT_EQ(h.bucket_index(-1.0), 0u);
  EXPECT_EQ(h.bucket_index(std::nan("")), 0u);
  // min_value lands in the first real bucket.
  EXPECT_EQ(h.bucket_index(config.min_value), 1u);
  // Values at/above max_value land in the overflow (last) bucket.
  EXPECT_EQ(h.bucket_index(config.max_value), h.num_buckets() - 1);
  EXPECT_EQ(h.bucket_index(1e300), h.num_buckets() - 1);
  // Bucket edges are geometric: upper/lower == 10^(1/buckets_per_decade).
  const double width = std::pow(10.0, 1.0 / static_cast<double>(config.buckets_per_decade));
  for (std::size_t i = 1; i + 1 < h.num_buckets(); ++i) {
    EXPECT_NEAR(h.bucket_upper(i) / h.bucket_lower(i), width, 1e-9);
    // Every bucket's lower edge maps back to that bucket.
    EXPECT_EQ(h.bucket_index(h.bucket_lower(i) * 1.0000001), i);
  }
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 0.0);
  EXPECT_TRUE(std::isinf(h.bucket_upper(h.num_buckets() - 1)));
}

TEST(Histogram, CountSumMinMax) {
  Histogram h;
  h.add(1.0);
  h.add(10.0);
  h.add(100.0, 2);  // weighted
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 211.0);
  EXPECT_DOUBLE_EQ(h.mean(), 211.0 / 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, PercentilesTrackExactWithinBucketWidth) {
  // Relative error of any percentile is bounded by the geometric bucket
  // width (10^(1/16) ~ 1.155 at the defaults).
  const HistogramConfig config;
  const double width = std::pow(10.0, 1.0 / static_cast<double>(config.buckets_per_decade));
  Histogram h(config);
  std::vector<double> xs;
  util::Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over [0.1, 1e4] — several decades, like real latencies.
    const double x = std::pow(10.0, rng.uniform(-1.0, 4.0));
    xs.push_back(x);
    h.add(x);
  }
  for (const double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9}) {
    const double exact = util::percentile(xs, p);
    const double approx = h.percentile(p);
    EXPECT_LE(approx / exact, width * 1.01) << "p" << p;
    EXPECT_GE(approx / exact, 1.0 / (width * 1.01)) << "p" << p;
  }
  // Extremes clamp to the observed range.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(100.0), h.max());
}

TEST(Histogram, SingleValuePercentilesAreExact) {
  Histogram h;
  h.add(42.0, 1000);
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 42.0);
  }
}

TEST(Histogram, MergeIsAssociativeAndMatchesSequential) {
  util::Rng rng(23);
  Histogram all;
  Histogram a;
  Histogram b;
  Histogram c;
  for (int i = 0; i < 3000; ++i) {
    const double x = std::pow(10.0, rng.uniform(-1.0, 3.0));
    all.add(x);
    (i % 3 == 0 ? a : (i % 3 == 1 ? b : c)).add(x);
  }
  // (a + b) + c
  Histogram left(a);
  left.merge(b);
  left.merge(c);
  // a + (b + c)
  Histogram right(b);
  right.merge(c);
  Histogram right_total(a);
  right_total.merge(right);
  // Bucket contents, count, and extremes are exactly associative; the
  // floating-point sum is associative only up to rounding.
  ASSERT_EQ(left.num_buckets(), all.num_buckets());
  for (std::size_t i = 0; i < all.num_buckets(); ++i) {
    EXPECT_EQ(left.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
    EXPECT_EQ(left.bucket_count(i), right_total.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(left.count(), all.count());
  EXPECT_EQ(right_total.count(), all.count());
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
  EXPECT_NEAR(left.sum(), all.sum(), std::abs(all.sum()) * 1e-12);
  EXPECT_NEAR(right_total.sum(), all.sum(), std::abs(all.sum()) * 1e-12);
  for (const double p : {50.0, 99.0}) {
    EXPECT_DOUBLE_EQ(left.percentile(p), all.percentile(p));
    EXPECT_DOUBLE_EQ(right_total.percentile(p), all.percentile(p));
  }
}

TEST(Histogram, MergeRejectsConfigMismatch) {
  HistogramConfig other;
  other.buckets_per_decade = 8;
  Histogram a;
  Histogram b(other);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, CrossThreadMergeMatchesSingleThread) {
  // The trainer-worker pattern: each thread records locally, then merges
  // into a shared registry histogram. The result must equal a sequential
  // recording of the union.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  MetricsRegistry registry;
  Histogram expected;
  for (int t = 0; t < kThreads; ++t) {
    util::Rng rng(100 + t);
    for (int i = 0; i < kPerThread; ++i) expected.add(std::pow(10.0, rng.uniform(0.0, 3.0)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      util::Rng rng(100 + t);
      Histogram local;
      for (int i = 0; i < kPerThread; ++i) local.add(std::pow(10.0, rng.uniform(0.0, 3.0)));
      registry.merge_histogram("xthread_us", local);
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram merged = registry.histogram("xthread_us");
  ASSERT_EQ(merged.count(), expected.count());
  for (std::size_t i = 0; i < expected.num_buckets(); ++i) {
    EXPECT_EQ(merged.bucket_count(i), expected.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(merged.min(), expected.min());
  EXPECT_DOUBLE_EQ(merged.max(), expected.max());
  // Threads merge in nondeterministic order; the sum matches up to rounding.
  EXPECT_NEAR(merged.sum(), expected.sum(), expected.sum() * 1e-12);
  EXPECT_DOUBLE_EQ(merged.percentile(99.0), expected.percentile(99.0));
}

TEST(Histogram, JsonRoundTrip) {
  Histogram h;
  util::Rng rng(31);
  for (int i = 0; i < 1000; ++i) h.add(std::pow(10.0, rng.uniform(-3.0, 8.0)));
  h.add(0.0);    // underflow
  h.add(1e300);  // overflow
  const util::Json json = h.to_json();
  // Through the serializer and parser, not just the value type.
  const util::Json reparsed = util::Json::parse(json.dump());
  const Histogram restored = Histogram::from_json(reparsed);
  EXPECT_TRUE(restored == h);
  EXPECT_EQ(restored.count(), h.count());
  EXPECT_DOUBLE_EQ(restored.percentile(99.0), h.percentile(99.0));
}

TEST(Histogram, FromJsonRejectsCountBucketMismatch) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(1.0 + i);
  util::Json json = h.to_json();
  // A truncated write that lost bucket entries but kept the scalar count
  // would produce exactly this: count no longer equals the bucket sum.
  json.as_object()["count"] = util::Json(static_cast<double>(h.count() + 1));
  EXPECT_THROW(Histogram::from_json(json), util::JsonError);
}

TEST(Histogram, FromJsonRejectsInvertedMinMax) {
  Histogram h;
  h.add(5.0);
  h.add(7.0);
  util::Json json = h.to_json();
  json.as_object()["min"] = util::Json(9.0);  // min > max with count > 0
  EXPECT_THROW(Histogram::from_json(json), util::JsonError);

  // NaN extremes are just as inconsistent and must not slip through the
  // comparison.
  util::Json nan_json = h.to_json();
  nan_json.as_object()["min"] = util::Json(std::nan(""));
  EXPECT_THROW(Histogram::from_json(nan_json), util::JsonError);
}

TEST(Registry, CountersAndGauges) {
  MetricsRegistry registry;
  registry.counter("a").add(3);
  registry.counter("a").add(2);
  registry.gauge("g").set(1.5);
  EXPECT_EQ(registry.counter("a").value(), 5u);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 1.5);
  registry.clear();
  EXPECT_EQ(registry.counter("a").value(), 0u);
}

TEST(Registry, ConcurrentCountersAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& c = registry.counter("hits");
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("hits").value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Registry, SnapshotSchema) {
  MetricsRegistry registry;
  registry.counter("flows").add(7);
  registry.gauge("ratio").set(0.5);
  registry.observe("lat_us", 100.0);
  registry.observe("lat_us", 200.0);
  const util::Json snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.at("counters").at("flows").as_int(), 7);
  EXPECT_DOUBLE_EQ(snapshot.at("gauges").at("ratio").as_number(), 0.5);
  const util::Json& hist = snapshot.at("histograms").at("lat_us");
  EXPECT_EQ(hist.at("count").as_int(), 2);
  EXPECT_GT(hist.at("p99").as_number(), hist.at("p50").as_number() * 0.99);
}

TEST(Exporters, SnapshotFileRoundTrips) {
  MetricsRegistry registry;
  registry.counter("n").add(1);
  registry.observe("h_us", 42.0);
  const std::string path = temp_path("dosc_test_snapshot.json");
  write_snapshot(registry, path, {{"scenario", util::Json("unit")}});
  const util::Json loaded = util::Json::load_file(path);
  EXPECT_EQ(loaded.at("schema").as_string(), kSnapshotSchema);
  EXPECT_EQ(loaded.at("scenario").as_string(), "unit");
  EXPECT_EQ(loaded.at("counters").at("n").as_int(), 1);
  EXPECT_EQ(loaded.at("histograms").at("h_us").at("count").as_int(), 1);
  std::remove(path.c_str());
}

TEST(Exporters, CsvTimeSeries) {
  const std::string path = temp_path("dosc_test_series.csv");
  {
    CsvTimeSeries csv(path, {"iter", "reward"});
    csv.append({0.0, -1.5});
    csv.append({1.0, 2.25});
    EXPECT_EQ(csv.rows_written(), 2u);
    EXPECT_THROW(csv.append({1.0}), std::invalid_argument);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[256];
  const std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  buffer[n] = '\0';
  const std::string contents(buffer);
  EXPECT_NE(contents.find("iter,reward"), std::string::npos);
  EXPECT_NE(contents.find("2.25"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  tracer.complete("cat", "span", 0.0, 1.0);
  tracer.instant("cat", "evt");
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, RecordsSpansAcrossThreads) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete("sim", "a", 10.0, 5.0);
  std::thread worker([&tracer] { tracer.complete("train", "b", 2.0, 1.0); });
  worker.join();
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time; the worker got its own tid.
  EXPECT_STREQ(events[0].name, "b");
  EXPECT_STREQ(events[1].name, "a");
  EXPECT_NE(events[0].tid, events[1].tid);
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(Tracer, RingWrapKeepsNewestAndCountsDropped) {
  Tracer tracer(/*ring_capacity=*/4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.complete("cat", "s", static_cast<double>(i), 1.0);
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().ts_us, 6.0);  // oldest kept
  EXPECT_DOUBLE_EQ(events.back().ts_us, 9.0);
  EXPECT_EQ(tracer.dropped_events(), 6u);
}

TEST(Tracer, ChromeJsonIsLoadable) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete("sim", "flow_arrival", 0.0, 2.5);
  tracer.instant("sim", "drop");  // ts = now_us() > 0, so it sorts second
  const std::string path = temp_path("dosc_test_trace.json");
  tracer.save_chrome_json(path);
  const util::Json loaded = util::Json::load_file(path);
  EXPECT_EQ(loaded.at("displayTimeUnit").as_string(), "ms");
  const util::Json::Array& events = loaded.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_EQ(events[0].at("name").as_string(), "flow_arrival");
  EXPECT_DOUBLE_EQ(events[0].at("dur").as_number(), 2.5);
  EXPECT_EQ(events[1].at("ph").as_string(), "i");
  for (const util::Json& e : events) {
    EXPECT_TRUE(e.contains("pid"));
    EXPECT_TRUE(e.contains("tid"));
    EXPECT_TRUE(e.contains("ts"));
  }
  std::remove(path.c_str());
}

TEST(Tracer, ScopedSpanUsesGlobalTracer) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    DOSC_TRACE_SCOPE("test", "scoped");
    DOSC_TRACE_INSTANT("test", "inside");
  }
  tracer.set_enabled(false);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  bool saw_span = false;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "scoped") {
      saw_span = true;
      EXPECT_EQ(e.phase, 'X');
      EXPECT_GE(e.dur_us, 0.0);
    }
  }
  EXPECT_TRUE(saw_span);
  tracer.clear();
}

TEST(Telemetry, EnableFlagDefaultsOff) {
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace dosc::telemetry
