// Randomized differential smoke: N fuzzed scenarios, each executed by all
// four coordinators under the full InvariantAuditor, with cross-checked
// accounting. ctest label: fuzz. DOSC_FUZZ_SEEDS scales the seed count
// (default 25; CI runs this under ASan/UBSan).
#include <gtest/gtest.h>

#include <cstdlib>

#include "check/differential.hpp"
#include "check/fuzzer.hpp"

namespace dosc::check {
namespace {

std::size_t fuzz_seeds() {
  if (const char* env = std::getenv("DOSC_FUZZ_SEEDS")) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 25;
}

TEST(Fuzz, DifferentialSweepIsClean) {
  const ScenarioFuzzer fuzzer;
  const std::size_t seeds = fuzz_seeds();
  std::size_t failed = 0;
  for (std::size_t seed = 0; seed < seeds; ++seed) {
    const sim::Scenario scenario = fuzzer.make(seed);
    const DifferentialResult result = run_differential(scenario);
    if (!result.ok()) {
      ++failed;
      ADD_FAILURE() << "fuzz seed " << seed << " (" << scenario.config().name << ", "
                    << scenario.network().num_nodes() << " nodes):\n"
                    << result.report();
    }
  }
  EXPECT_EQ(failed, 0u) << failed << "/" << seeds << " fuzz seeds violated invariants";
}

}  // namespace
}  // namespace dosc::check
