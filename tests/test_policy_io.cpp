// Policy snapshot format: version field, parameter checksum, and the
// rejection paths for corrupt / truncated / future-version files. A bad
// snapshot must fail loudly at load time — it is what the serving daemon
// hot-swaps into production.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/policy_io.hpp"
#include "serve/daemon.hpp"
#include "sim/scenario.hpp"
#include "util/json.hpp"

using namespace dosc;

namespace {

core::TrainedPolicy tiny_policy() {
  core::TrainedPolicy policy;
  policy.net_config.obs_dim = 8;
  policy.net_config.num_actions = 3;
  policy.net_config.hidden = {4};
  policy.net_config.seed = 99;
  policy.max_degree = 2;
  policy.eval_success_ratio = 0.5;
  policy.parameters = rl::ActorCritic(policy.net_config).get_parameters();
  return policy;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

}  // namespace

TEST(PolicyIo, ChecksumIsOrderSensitiveAndStable) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_EQ(core::policy_checksum(a), core::policy_checksum(a));
  EXPECT_NE(core::policy_checksum(a), core::policy_checksum(b));
  EXPECT_NE(core::policy_checksum(a), core::policy_checksum({}));
  // 0.0 and -0.0 have different bit patterns; the checksum must see bits,
  // not values.
  EXPECT_NE(core::policy_checksum({0.0}), core::policy_checksum({-0.0}));
}

TEST(PolicyIo, ExpectedParameterCountMatchesInstantiatedNet) {
  const core::TrainedPolicy policy = tiny_policy();
  EXPECT_EQ(core::expected_parameter_count(policy.net_config), policy.parameters.size());
}

TEST(PolicyIo, SaveLoadRoundTripPreservesEverything) {
  const core::TrainedPolicy policy = tiny_policy();
  const std::string path = temp_path("roundtrip_policy.json");
  core::save_policy(policy, path);

  const core::TrainedPolicy loaded = core::load_policy(path);
  EXPECT_EQ(loaded.net_config.obs_dim, policy.net_config.obs_dim);
  EXPECT_EQ(loaded.net_config.num_actions, policy.net_config.num_actions);
  EXPECT_EQ(loaded.net_config.hidden, policy.net_config.hidden);
  EXPECT_EQ(loaded.max_degree, policy.max_degree);
  // %.17g round-trips doubles exactly, so the checksum verification inside
  // load_policy already proved bit-identity; double-check anyway.
  EXPECT_EQ(loaded.parameters, policy.parameters);
  EXPECT_EQ(core::policy_checksum(loaded.parameters), core::policy_checksum(policy.parameters));
  std::remove(path.c_str());
}

TEST(PolicyIo, SnapshotCarriesVersionAndChecksum) {
  const util::Json json = core::to_json(tiny_policy());
  EXPECT_EQ(json.at("format_version").as_int(), core::kPolicyFormatVersion);
  EXPECT_EQ(json.at("param_checksum").as_string().size(), 16u);
}

TEST(PolicyIo, CorruptedParameterIsRejectedWithChecksumError) {
  util::Json json = core::to_json(tiny_policy());
  util::Json::Object o = json.as_object();
  util::Json::Array params = o.at("parameters").as_array();
  params[params.size() / 2] = util::Json(params[params.size() / 2].as_number() + 1e-9);
  o["parameters"] = util::Json(std::move(params));
  try {
    core::policy_from_json(util::Json(std::move(o)));
    FAIL() << "corrupt parameters were accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST(PolicyIo, TruncatedParametersAreRejectedWithCountError) {
  util::Json json = core::to_json(tiny_policy());
  util::Json::Object o = json.as_object();
  util::Json::Array params = o.at("parameters").as_array();
  params.pop_back();  // simulate a truncated write
  o["parameters"] = util::Json(std::move(params));
  o.erase("param_checksum");  // isolate the structural check
  try {
    core::policy_from_json(util::Json(std::move(o)));
    FAIL() << "truncated parameters were accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("parameter count"), std::string::npos) << e.what();
  }
}

TEST(PolicyIo, FutureFormatVersionIsRejected) {
  util::Json json = core::to_json(tiny_policy());
  util::Json::Object o = json.as_object();
  o["format_version"] = util::Json(static_cast<int>(core::kPolicyFormatVersion + 1));
  try {
    core::policy_from_json(util::Json(std::move(o)));
    FAIL() << "future format version was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("format_version"), std::string::npos) << e.what();
  }
}

TEST(PolicyIo, LegacyFileWithoutVersionOrChecksumStillLoads) {
  // Pre-v2 snapshots had neither field; they must keep loading (with the
  // structural validation still applied).
  util::Json json = core::to_json(tiny_policy());
  util::Json::Object o = json.as_object();
  o.erase("format_version");
  o.erase("param_checksum");
  const core::TrainedPolicy loaded = core::policy_from_json(util::Json(std::move(o)));
  EXPECT_EQ(loaded.parameters.size(),
            core::expected_parameter_count(loaded.net_config));
}

TEST(PolicyIo, ValidatePolicyRejectsZeroShapes) {
  core::TrainedPolicy policy = tiny_policy();
  policy.net_config.obs_dim = 0;
  EXPECT_THROW(core::validate_policy(policy), std::runtime_error);
  policy = tiny_policy();
  policy.max_degree = 0;
  EXPECT_THROW(core::validate_policy(policy), std::runtime_error);
}

TEST(PolicyIo, UntrainedServingPolicyRoundTripsThroughDisk) {
  // The CI smoke path: init-policy writes an untrained snapshot, the
  // daemon loads and validates it against the scenario.
  const sim::Scenario scenario = sim::make_base_scenario();
  const core::TrainedPolicy policy = serve::make_untrained_policy(scenario, 16, 5);
  const std::string path = temp_path("untrained_policy.json");
  core::save_policy(policy, path);
  const core::TrainedPolicy loaded = core::load_policy(path);
  EXPECT_NO_THROW(
      serve::make_serve_policy(loaded, scenario.network().max_degree(), /*version=*/1));
  std::remove(path.c_str());
}
