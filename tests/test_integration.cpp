// Cross-module integration: every coordination algorithm runs end-to-end on
// every Table-I topology; the full train->deploy->evaluate pipeline works on
// the paper's base scenario; and the structural scalability claims hold
// (observation/action sizes depend on the degree, not the node count).
#include <gtest/gtest.h>

#include "baselines/central_drl.hpp"
#include "baselines/gcasp.hpp"
#include "baselines/shortest_path.hpp"
#include "core/observation.hpp"
#include "core/trainer.hpp"
#include "net/topology_zoo.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace dosc {
namespace {

class TopologySmoke : public ::testing::TestWithParam<const char*> {};

TEST_P(TopologySmoke, AllAlgorithmsRunOnAllTopologies) {
  const sim::Scenario scenario = sim::make_base_scenario(
      2, traffic::TrafficSpec::poisson(10.0), 100.0, GetParam(), /*end_time=*/500.0);

  // SP and GCASP.
  {
    baselines::ShortestPathCoordinator sp;
    sim::Simulator sim(scenario, 1);
    const sim::SimMetrics m = sim.run(sp);
    EXPECT_EQ(m.succeeded + m.dropped, m.generated);
  }
  {
    baselines::GcaspCoordinator gcasp;
    sim::Simulator sim(scenario, 1);
    const sim::SimMetrics m = sim.run(gcasp);
    EXPECT_EQ(m.succeeded + m.dropped, m.generated);
    EXPECT_EQ(m.drops_by_reason[static_cast<std::size_t>(sim::DropReason::kInvalidAction)],
              0u);
  }
  // Untrained distributed DRL (random policy) — must run without errors.
  {
    rl::ActorCriticConfig config;
    config.obs_dim = core::observation_dim(scenario.network().max_degree());
    config.num_actions = scenario.num_actions();
    config.hidden = {8};
    config.seed = 2;
    const rl::ActorCritic net(config);
    core::DistributedDrlCoordinator coordinator(net, scenario.network().max_degree());
    sim::Simulator sim(scenario, 1);
    const sim::SimMetrics m = sim.run(coordinator);
    EXPECT_EQ(m.succeeded + m.dropped, m.generated);
  }
  // Untrained central DRL.
  {
    baselines::CentralDrlConfig config;
    config.hidden = {8};
    rl::ActorCriticConfig net_config;
    net_config.obs_dim = baselines::central_observation_dim(scenario);
    net_config.num_actions = scenario.network().num_nodes();
    net_config.hidden = config.hidden;
    net_config.seed = 3;
    const rl::ActorCritic net(net_config);
    baselines::CentralDrlCoordinator coordinator(net, config, core::RewardConfig{});
    sim::Simulator sim(scenario, 1);
    const sim::SimMetrics m = sim.run(coordinator, &coordinator);
    EXPECT_EQ(m.succeeded + m.dropped, m.generated);
  }
}

INSTANTIATE_TEST_SUITE_P(TableI, TopologySmoke,
                         ::testing::Values("abilene", "bt_europe", "china_telecom",
                                           "interroute"));

TEST(Scalability, ObservationSizeDependsOnDegreeNotNodeCount) {
  // The paper's central scalability argument (Sec. I): observation and
  // action spaces are invariant to |V| and scale with Delta_G only.
  const net::Network abilene = net::abilene();        // 11 nodes, degree 3
  const net::Network interroute = net::interroute();  // 110 nodes, degree 7
  EXPECT_EQ(core::observation_dim(abilene.max_degree()), 16u);
  EXPECT_EQ(core::observation_dim(interroute.max_degree()), 32u);
  // 10x more nodes -> only 2x observation (via degree), not 10x.
  EXPECT_LT(core::observation_dim(interroute.max_degree()),
            core::observation_dim(abilene.max_degree()) * 3);
}

TEST(Integration, TrainDeployEvaluateOnBaseScenario) {
  const sim::Scenario scenario = sim::make_base_scenario(
      2, traffic::TrafficSpec::poisson(10.0), 100.0, "abilene", 20000.0);
  core::TrainingConfig config;
  config.hidden = {32, 32};
  config.num_seeds = 1;
  config.parallel_envs = 2;
  config.iterations = 100;
  config.train_episode_time = 800.0;
  config.eval_episodes = 2;
  config.eval_episode_time = 1000.0;
  const core::TrainedPolicy policy = train_distributed_policy(scenario, config);
  EXPECT_EQ(policy.net_config.obs_dim, 16u);
  EXPECT_EQ(policy.net_config.num_actions, 4u);

  // Deploy the single trained network as the shared policy of every node's
  // agent and evaluate on longer unseen episodes.
  const rl::ActorCritic net = policy.instantiate();
  const core::EvalResult eval =
      core::evaluate_policy(scenario, net, config.reward, 3, 2000.0, 777);
  // 100 iterations is far from converged, but must already clear a random
  // policy by a wide margin (random drops almost everything via invalid
  // actions and wandering).
  EXPECT_GT(eval.success_ratio, 0.4);
}

TEST(Integration, TrainedPolicyTransfersAcrossLoadLevels) {
  // Mini version of Fig. 8b: the agent trained at 2 ingresses must still
  // function (not collapse to ~0) when evaluated with 4 ingresses.
  const sim::Scenario train_scenario = sim::make_base_scenario(2);
  core::TrainingConfig config;
  config.hidden = {32, 32};
  config.num_seeds = 1;
  config.parallel_envs = 2;
  config.iterations = 100;
  config.train_episode_time = 800.0;
  config.eval_episodes = 1;
  config.eval_episode_time = 600.0;
  const core::TrainedPolicy policy = train_distributed_policy(train_scenario, config);
  const rl::ActorCritic net = policy.instantiate();

  const sim::Scenario heavy = sim::make_base_scenario(4);
  const core::EvalResult eval =
      core::evaluate_policy(heavy, net, config.reward, 2, 1500.0, 31);
  EXPECT_GT(eval.success_ratio, 0.2);
}

TEST(Integration, DistributedInferenceTimingIsCollected) {
  const sim::Scenario scenario = sim::make_base_scenario(
      2, traffic::TrafficSpec::poisson(10.0), 100.0, "abilene", 300.0);
  rl::ActorCriticConfig config;
  config.obs_dim = core::observation_dim(scenario.network().max_degree());
  config.num_actions = scenario.num_actions();
  config.hidden = {64, 64};
  config.seed = 5;
  const rl::ActorCritic net(config);
  core::DistributedDrlCoordinator coordinator(net, scenario.network().max_degree());
  sim::Simulator sim(scenario, 9);
  sim.enable_decision_timing(true);
  const sim::SimMetrics metrics = sim.run(coordinator);
  ASSERT_GT(metrics.decision_time.count(), 10u);
  // The paper reports ~1 ms per decision on 2017-era hardware with
  // TensorFlow; our native implementation must comfortably stay under that.
  EXPECT_LT(metrics.decision_time.mean(), 1000.0);
  // The histogram sees the same samples as the RunningStats.
  EXPECT_EQ(metrics.decision_time_hist.count(), metrics.decision_time.count());
  EXPECT_GT(metrics.decision_time_hist.percentile(99.0),
            metrics.decision_time_hist.percentile(50.0) * 0.999);
}

}  // namespace
}  // namespace dosc
