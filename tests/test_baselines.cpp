#include <gtest/gtest.h>

#include "baselines/central_drl.hpp"
#include "baselines/gcasp.hpp"
#include "baselines/shortest_path.hpp"
#include "test_helpers.hpp"

namespace dosc::baselines {
namespace {

using test::TinyScenarioOptions;
using test::tiny_scenario;

TEST(NeighborAction, FindsOneBasedIndex) {
  const net::Network n = test::line3();
  EXPECT_EQ(neighbor_action(n, 0, 1), 1);
  EXPECT_EQ(neighbor_action(n, 1, 0), 1);
  EXPECT_EQ(neighbor_action(n, 1, 2), 2);
  EXPECT_EQ(neighbor_action(n, 0, 2), -1);  // not adjacent
}

TEST(ShortestPath, ProcessesAlongPathWhenCapacityAllows) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ShortestPathCoordinator sp;
  sim::Simulator sim(scenario, 1);
  const sim::SimMetrics metrics = sim.run(sp);
  EXPECT_EQ(metrics.succeeded, 1u);
  // Processed at the ingress (capacity 10): e2e = 5 + 4 = 9.
  EXPECT_DOUBLE_EQ(metrics.e2e_delay.mean(), 9.0);
}

TEST(ShortestPath, SkipsFullNodesAlongPath) {
  // Ingress has no capacity; the middle node does. SP must push the flow
  // one hop and process there.
  net::Network network = test::line3();
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  options.node_capacity = 10.0;
  sim::ScenarioConfig config;
  config.ingress = {0};
  config.egress = 2;
  config.end_time = 15.0;
  config.traffic = traffic::TrafficSpec::fixed(10.0);
  config.link_cap_lo = config.link_cap_hi = 10.0;
  // Draw node capacities from a point mass of 0 is impossible per node —
  // instead give all nodes capacity via range and set node 0's to 0 by
  // using resource_fixed... simpler: demand 1, capacities 0.4 never fit.
  config.node_cap_lo = config.node_cap_hi = 0.4;
  config.flows = {sim::FlowTemplate{}};
  const sim::Scenario starved(config, test::one_component_catalog(), test::line3());
  ShortestPathCoordinator sp;
  sim::Simulator sim(starved, 1);
  const sim::SimMetrics metrics = sim.run(sp);
  // No node can process: the flow is pushed to the egress and force-dropped.
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(sim::DropReason::kNodeOverload)],
            1u);
}

TEST(ShortestPath, RoutesProcessedFlowStraightToEgress) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ShortestPathCoordinator sp;
  test::RecordingObserver observer;
  sim::Simulator sim(scenario, 1);
  sim.run(sp, &observer);
  // Exactly two forwards (0->1, 1->2), no parking.
  EXPECT_EQ(observer.count(test::RecordingObserver::Event::Kind::kForwarded), 2u);
  EXPECT_EQ(observer.count(test::RecordingObserver::Event::Kind::kParked), 0u);
}

TEST(ShortestPath, IgnoresLinkSaturationAndDrops) {
  // Two simultaneous flows, link capacity 1.5: SP pushes both along the
  // same path once the ingress is full — the second hits the full link or
  // node and drops. SP never reroutes.
  sim::ScenarioConfig config;
  config.ingress = {0, 0};
  config.egress = 2;
  config.end_time = 15.0;
  config.traffic = traffic::TrafficSpec::fixed(10.0);
  config.node_cap_lo = config.node_cap_hi = 1.0;  // one concurrent processing
  config.link_cap_lo = config.link_cap_hi = 1.5;
  config.flows = {sim::FlowTemplate{}};
  const sim::Scenario scenario(config, test::one_component_catalog(), test::line3());
  ShortestPathCoordinator sp;
  sim::Simulator sim(scenario, 1);
  const sim::SimMetrics metrics = sim.run(sp);
  EXPECT_EQ(metrics.generated, 2u);
  EXPECT_EQ(metrics.succeeded + metrics.dropped, 2u);
  EXPECT_GE(metrics.dropped, 1u);
}

TEST(Gcasp, ProcessesLocallyWhenPossible) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  GcaspCoordinator gcasp;
  sim::Simulator sim(scenario, 1);
  const sim::SimMetrics metrics = sim.run(gcasp);
  EXPECT_EQ(metrics.succeeded, 1u);
  EXPECT_DOUBLE_EQ(metrics.e2e_delay.mean(), 9.0);
}

TEST(Gcasp, ReroutesAroundSaturatedFastPath) {
  // Diamond A->D: fast path A-B-D (delay 4) has links too small for the
  // flow (cap 0.5 < rate 1); the slow path A-C-D (delay 6) is wide open.
  // GCASP must take the slow path; SP blindly picks the fast link and
  // drops.
  net::Network network = test::diamond(/*cap_fast=*/0.5, /*cap_slow=*/10.0);
  for (net::NodeId v = 0; v < network.num_nodes(); ++v) network.set_node_capacity(v, 10.0);
  sim::ScenarioConfig config;
  config.ingress = {0};
  config.egress = 3;
  config.end_time = 15.0;
  config.traffic = traffic::TrafficSpec::fixed(10.0);
  config.randomize_capacities = false;  // keep the asymmetric capacities
  config.flows = {sim::FlowTemplate{}};
  const sim::Scenario scenario(config, test::one_component_catalog(), std::move(network));

  {
    GcaspCoordinator gcasp;
    sim::Simulator sim(scenario, 1);
    const sim::SimMetrics metrics = sim.run(gcasp);
    EXPECT_EQ(metrics.succeeded, 1u);
    // Processed at the ingress (5 ms) then routed A-C-D (6 ms).
    EXPECT_DOUBLE_EQ(metrics.e2e_delay.mean(), 11.0);
  }
  {
    ShortestPathCoordinator sp;
    sim::Simulator sim(scenario, 1);
    const sim::SimMetrics metrics = sim.run(sp);
    EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(sim::DropReason::kLinkOverload)],
              1u);
  }
}

TEST(Gcasp, PrefersNeighborTowardsEgressUnderTies) {
  // On line3 from node 1 with a processed flow, GCASP must pick node 2
  // (egress direction), not node 0.
  TinyScenarioOptions options;
  options.ingress = {1};
  options.egress = 2;
  options.end_time = 15.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  GcaspCoordinator gcasp;
  test::RecordingObserver observer;
  sim::Simulator sim(scenario, 1);
  const sim::SimMetrics metrics = sim.run(gcasp, &observer);
  EXPECT_EQ(metrics.succeeded, 1u);
  EXPECT_EQ(observer.count(test::RecordingObserver::Event::Kind::kForwarded), 1u);
  EXPECT_DOUBLE_EQ(metrics.e2e_delay.mean(), 7.0);  // 5 + 2
}

TEST(Gcasp, SkipsDeadlineInfeasibleNeighbors) {
  // Remaining deadline is too small for any route: GCASP's ranked search
  // finds nothing and falls back to the SP hop; flow expires or drops but
  // never via an invalid action.
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.deadline = 1.0;  // < 4 ms path delay, < 5 ms processing
  options.node_capacity = 0.1;
  options.end_time = 15.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  GcaspCoordinator gcasp;
  sim::Simulator sim(scenario, 1);
  const sim::SimMetrics metrics = sim.run(gcasp);
  EXPECT_EQ(metrics.dropped, 1u);
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(sim::DropReason::kInvalidAction)],
            0u);
}

rl::ActorCritic central_net(const sim::Scenario& scenario, const CentralDrlConfig& config) {
  rl::ActorCriticConfig net_config;
  net_config.obs_dim = central_observation_dim(scenario);
  net_config.num_actions = scenario.network().num_nodes();
  net_config.hidden = config.hidden;
  net_config.seed = 1;
  return rl::ActorCritic(net_config);
}

TEST(CentralDrl, ObservationDimIncludesNodesComponentsTime) {
  const sim::Scenario scenario = sim::make_base_scenario(2);
  EXPECT_EQ(central_observation_dim(scenario), 11u + 3u + 1u);
}

TEST(CentralDrl, RunsAndAppliesRules) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 300.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  CentralDrlConfig config;
  config.hidden = {8};
  const rl::ActorCritic net = central_net(scenario, config);
  CentralDrlCoordinator coordinator(net, config, core::RewardConfig{});
  sim::Simulator sim(scenario, 1);
  const sim::SimMetrics metrics = sim.run(coordinator, &coordinator);
  EXPECT_EQ(metrics.generated, 30u);
  EXPECT_EQ(metrics.succeeded + metrics.dropped, 30u);
  // No invalid actions: rules only route along real shortest-path hops.
  EXPECT_EQ(metrics.drops_by_reason[static_cast<std::size_t>(sim::DropReason::kInvalidAction)],
            0u);
}

TEST(CentralDrl, MonitoringSnapshotIsStale) {
  // The observation the central agent acts on at tick k must reflect the
  // state captured at tick k-1 (the paper's monitoring delay). We verify
  // by loading the node between ticks and checking the rules keep using
  // the idle snapshot until the *next* tick.
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.interarrival = 3.0;
  options.end_time = 300.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  CentralDrlConfig config;
  config.hidden = {8};
  config.monitoring_interval = 50.0;
  const rl::ActorCritic net = central_net(scenario, config);
  CentralDrlCoordinator coordinator(net, config, core::RewardConfig{});
  sim::Simulator sim(scenario, 2);
  const sim::SimMetrics metrics = sim.run(coordinator, &coordinator);
  // Behavioural smoke: the episode runs to completion with periodic rules.
  EXPECT_GT(metrics.generated, 50u);
}

TEST(CentralDrl, TrainingImprovesOverRandomPolicy) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.interarrival = 10.0;
  options.end_time = 400.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);

  CentralTrainingConfig config;
  config.central.hidden = {8};
  config.central.monitoring_interval = 50.0;
  config.num_seeds = 1;
  config.parallel_envs = 2;
  config.iterations = 30;
  config.train_episode_time = 400.0;
  config.eval_episodes = 2;
  config.eval_episode_time = 400.0;
  const core::TrainedPolicy policy = train_central_policy(scenario, config);
  EXPECT_EQ(policy.net_config.num_actions, 3u);
  EXPECT_GT(policy.eval_success_ratio, 0.3);
}

TEST(Timing, SimulatorRecordsDecisionTimesForBaselines) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 100.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ShortestPathCoordinator sp;
  sim::Simulator sim(scenario, 1);
  sim.enable_decision_timing(true);
  const sim::SimMetrics metrics = sim.run(sp);
  EXPECT_GT(metrics.decision_time.count(), 0u);
  EXPECT_GE(metrics.decision_time.mean(), 0.0);
  EXPECT_EQ(metrics.decision_time_hist.count(), metrics.decision_time.count());
}

TEST(Timing, DecisionTimingOffByDefault) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 100.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ShortestPathCoordinator sp;
  sim::Simulator sim(scenario, 1);
  const sim::SimMetrics metrics = sim.run(sp);
  EXPECT_GT(metrics.decisions, 0u);
  EXPECT_EQ(metrics.decision_time.count(), 0u);
  EXPECT_EQ(metrics.decision_time_hist.count(), 0u);
}

}  // namespace
}  // namespace dosc::baselines
