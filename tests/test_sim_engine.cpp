// Storage/event-engine regression tests: pooled flow and hold slots must be
// recycled (bounded memory at steady state), the event heap must stay
// proportional to the number of *live* flows (lazy cancellation +
// compaction), and — the contract that makes all of this a pure
// optimisation — skipping stale events must leave SimMetrics bit-identical
// to the golden values recorded under dispatch-everything semantics.
#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/shortest_path.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace dosc::sim {
namespace {

TEST(SimEngine, HoldListInlineAndSpill) {
  HoldList list;
  EXPECT_TRUE(list.empty());
  for (std::uint64_t i = 0; i < 2 * HoldList::kInline; ++i) list.push_back(100 + i);
  ASSERT_EQ(list.size(), 2 * HoldList::kInline);
  for (std::size_t i = 0; i < list.size(); ++i) EXPECT_EQ(list[i], 100 + i);
  // remove_dead keeps order of the survivors.
  list.remove_dead([](std::uint64_t h) { return h % 2 == 0; });
  ASSERT_EQ(list.size(), HoldList::kInline);
  for (std::size_t i = 0; i < list.size(); ++i) EXPECT_EQ(list[i], 100 + 2 * i);
  list.clear();
  EXPECT_EQ(list.size(), 0u);
  // Reuse after clear: the spill storage is retained, values are fresh.
  for (std::uint64_t i = 0; i < HoldList::kInline + 3; ++i) list.push_back(7 * i);
  ASSERT_EQ(list.size(), HoldList::kInline + 3);
  for (std::size_t i = 0; i < list.size(); ++i) EXPECT_EQ(list[i], 7 * i);
}

TEST(SimEngine, SteadyStatePoolsAndHeapAreBounded) {
  // Long stationary Poisson episode with generous deadlines: thousands of
  // flows pass through, but only O(tens) are alive at once. Pool slots and
  // the event heap must scale with the latter, not the former.
  const Scenario scenario =
      make_base_scenario(3, traffic::TrafficSpec::poisson(5.0)).with_end_time(6000.0);
  baselines::ShortestPathCoordinator coordinator;
  Simulator sim(scenario, 7);
  const SimMetrics metrics = sim.run(coordinator);
  const Simulator::EngineStats stats = sim.engine_stats();
  std::printf("engine stats: gen=%llu peak_heap=%zu peak_live=%zu flow_slots=%zu "
              "hold_slots=%zu flows_recycled=%llu holds_recycled=%llu "
              "skipped=%llu compactions=%llu\n",
              static_cast<unsigned long long>(metrics.generated), stats.peak_event_heap,
              stats.peak_live_flows, stats.flow_slots, stats.hold_slots,
              static_cast<unsigned long long>(stats.flows_recycled),
              static_cast<unsigned long long>(stats.holds_recycled),
              static_cast<unsigned long long>(stats.events_skipped),
              static_cast<unsigned long long>(stats.heap_compactions));
  ASSERT_GT(metrics.generated, 1000u);

  // Flow pool: slots are created only when no freed slot exists, so the
  // pool never exceeds the live-flow peak, and recycling covers the rest.
  EXPECT_LE(stats.flow_slots, stats.peak_live_flows);
  EXPECT_EQ(stats.flows_recycled, metrics.generated - stats.flow_slots);
  EXPECT_GT(stats.flows_recycled, metrics.generated / 2);

  // Hold pool: the free list keeps capacity plateaued at the concurrent
  // hold peak — far below the one-slot-per-acquisition growth of the old
  // engine (several holds per generated flow).
  EXPECT_GT(stats.holds_recycled, 0u);
  EXPECT_LT(stats.hold_slots, metrics.generated);
  EXPECT_GT(stats.holds_recycled, static_cast<std::uint64_t>(stats.hold_slots));

  // Event heap: stale events are skipped/compacted away, so the peak depth
  // is a small multiple of the live-flow peak (each live flow contributes a
  // bounded number of pending timers), not O(total generated flows).
  EXPECT_GE(stats.peak_live_flows, 8u);
  EXPECT_LT(stats.peak_event_heap, 16 * stats.peak_live_flows + 64);
  EXPECT_LT(stats.peak_event_heap, metrics.generated / 4);
}

TEST(SimEngine, StaleSkippingLeavesGoldenMetricsIdentical) {
  // Same scenario/seed as Golden.ShortestPathAbilene. These SimMetrics pins
  // were recorded under the seed engine, which dispatched every event
  // (stale ones as no-ops). The pooled engine demonstrably skips events
  // here — and must land on bit-identical metrics.
  const Scenario scenario = make_base_scenario(3).with_end_time(2000.0);
  baselines::ShortestPathCoordinator coordinator;
  Simulator sim(scenario, 7);
  const SimMetrics metrics = sim.run(coordinator);
  const Simulator::EngineStats stats = sim.engine_stats();
  EXPECT_GT(stats.events_skipped, 0u);
  EXPECT_EQ(metrics.generated, 608u);
  EXPECT_EQ(metrics.succeeded, 222u);
  EXPECT_EQ(metrics.dropped, 386u);
  EXPECT_NEAR(metrics.e2e_delay.mean(), 20.7011568840385, 1e-9);
}

TEST(SimEngine, RecycledFlowSlotsInvalidateStaleEvents) {
  // Force heavy slot recycling (short deadlines, egress unreachable fast
  // enough) and check the audit surface still reconciles: every generated
  // flow is accounted and no event resurrects a dead flow's slot. A
  // generation-tag bug here shows up as metrics corruption or a crash.
  test::TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 500.0;
  options.deadline = 6.0;  // expires mid-processing: drops release holds early
  options.interarrival = 2.0;
  const Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  test::LambdaCoordinator coordinator(
      [](const Simulator& sim, const Flow& flow, net::NodeId node) -> int {
        if (!sim.fully_processed(flow)) return 0;
        return node == 0 ? 1 : 2;
      });
  Simulator sim(scenario, 3);
  const SimMetrics metrics = sim.run(coordinator);
  const Simulator::EngineStats stats = sim.engine_stats();
  EXPECT_EQ(metrics.succeeded + metrics.dropped, metrics.generated);
  EXPECT_GT(metrics.dropped, 0u);
  EXPECT_GT(stats.flows_recycled, 0u);
  EXPECT_GT(stats.events_skipped, 0u);
  EXPECT_EQ(sim.num_active_flows(), 0u);
}

}  // namespace
}  // namespace dosc::sim
