// The POMDP observation adapter (Sec. IV-B1): layout, normalisation to
// [-1,1], dummy-neighbour padding, and the semantics of every part
// (F_f, R^L, R^V, D, X) on hand-checkable networks.
#include <gtest/gtest.h>

#include <cstring>

#include "core/observation.hpp"
#include "test_helpers.hpp"

namespace dosc::core {
namespace {

using test::LambdaCoordinator;
using test::TinyScenarioOptions;
using test::tiny_scenario;

TEST(Observation, DimFormula) {
  EXPECT_EQ(observation_dim(1), 8u);
  EXPECT_EQ(observation_dim(3), 16u);   // Abilene
  EXPECT_EQ(observation_dim(13), 56u);  // BT Europe
  EXPECT_THROW(ObservationBuilder(0), std::invalid_argument);
}

/// Runs one scripted episode on line3 and captures the observation of the
/// first decision at the ingress (node 0, degree 1, padded to degree 2).
std::vector<double> first_observation(TinyScenarioOptions options,
                                      sim::ServiceCatalog catalog) {
  options.end_time = std::min(options.end_time, options.interarrival + 1.0);
  const sim::Scenario scenario = tiny_scenario(test::line3(), std::move(catalog), options);
  ObservationBuilder builder(scenario.network().max_degree());
  std::vector<double> captured;
  LambdaCoordinator coordinator(
      [&](const sim::Simulator& sim, const sim::Flow& flow, net::NodeId node) -> int {
        if (captured.empty()) captured = builder.build(sim, flow, node);
        return 0;
      });
  sim::Simulator sim(scenario, 1);
  sim.run(coordinator);
  return captured;
}

TEST(Observation, LayoutAndPaddingAtDegreeOneNode) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.node_capacity = 2.0;
  options.link_cap_lo = options.link_cap_hi = 4.0;
  options.deadline = 100.0;
  const std::vector<double> obs =
      first_observation(options, test::one_component_catalog());
  // Delta_G = 2 on line3 -> dim = 12.
  ASSERT_EQ(obs.size(), 12u);

  // F_f: fresh flow -> progress 0, full deadline budget.
  EXPECT_DOUBLE_EQ(obs[0], 0.0);
  EXPECT_DOUBLE_EQ(obs[1], 1.0);

  // R^L (2 slots): free link 4 - rate 1 = 3, normalised by max cap 4.
  EXPECT_DOUBLE_EQ(obs[2], 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(obs[3], kDummy);  // padded second neighbour

  // R^V (3 slots): self, neighbour(node 1), pad. free 2 - demand 1 over
  // max node cap 2.
  EXPECT_DOUBLE_EQ(obs[4], 0.5);
  EXPECT_DOUBLE_EQ(obs[5], 0.5);
  EXPECT_DOUBLE_EQ(obs[6], kDummy);

  // D (2 slots): remaining 100, delay via node1 to egress = 2 + 2 = 4.
  EXPECT_DOUBLE_EQ(obs[7], (100.0 - 4.0) / 100.0);
  EXPECT_DOUBLE_EQ(obs[8], kDummy);

  // X (3 slots): no instances anywhere yet; pad -1.
  EXPECT_DOUBLE_EQ(obs[9], 0.0);
  EXPECT_DOUBLE_EQ(obs[10], 0.0);
  EXPECT_DOUBLE_EQ(obs[11], kDummy);
}

TEST(Observation, NegativeWhenLinkCannotCarryFlow) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.link_cap_lo = options.link_cap_hi = 0.5;  // < rate 1
  const std::vector<double> obs =
      first_observation(options, test::one_component_catalog());
  EXPECT_LT(obs[2], 0.0);
  EXPECT_GE(obs[2], -1.0);
}

TEST(Observation, NegativeWhenNodeCannotProcess) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.node_capacity = 0.25;  // < demand 1
  const std::vector<double> obs =
      first_observation(options, test::one_component_catalog());
  EXPECT_LT(obs[4], 0.0);
  EXPECT_GE(obs[4], -1.0);
}

TEST(Observation, AllValuesWithinUnitRange) {
  // Property over a full noisy episode on Abilene with random capacities:
  // every observation coordinate stays in [-1, 1].
  const sim::Scenario scenario =
      sim::make_base_scenario(3, traffic::TrafficSpec::poisson(5.0), 40.0, "abilene", 800.0);
  ObservationBuilder builder(scenario.network().max_degree());
  util::Rng rng(3);
  std::size_t checked = 0;
  LambdaCoordinator coordinator(
      [&](const sim::Simulator& sim, const sim::Flow& flow, net::NodeId node) -> int {
        const auto& obs = builder.build(sim, flow, node);
        EXPECT_EQ(obs.size(), observation_dim(scenario.network().max_degree()));
        for (const double o : obs) {
          EXPECT_GE(o, -1.0);
          EXPECT_LE(o, 1.0);
        }
        ++checked;
        return static_cast<int>(rng.uniform_int(0, 3));
      });
  sim::Simulator sim(scenario, 11);
  sim.run(coordinator);
  EXPECT_GT(checked, 100u);
}

TEST(Observation, ProgressAndDeadlineEvolve) {
  // Three-component chain: p_hat goes 0 -> 1/3 -> 2/3 -> 1 as instances
  // are traversed, and tau_hat strictly decreases over time.
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), sim::make_video_streaming_catalog(), options);
  ObservationBuilder builder(scenario.network().max_degree());
  std::vector<double> progress;
  std::vector<double> deadline_frac;
  LambdaCoordinator coordinator(
      [&](const sim::Simulator& sim, const sim::Flow& flow, net::NodeId node) -> int {
        const auto& obs = builder.build(sim, flow, node);
        progress.push_back(obs[0]);
        deadline_frac.push_back(obs[1]);
        if (!sim.fully_processed(flow)) return 0;  // process everything here
        // Then head towards the egress along real neighbours.
        const net::NodeId hop = sim.shortest_paths().next_hop(node, flow.egress);
        const auto& nb = sim.network().neighbors(node);
        for (std::size_t i = 0; i < nb.size(); ++i) {
          if (nb[i].node == hop) return static_cast<int>(i + 1);
        }
        return 0;
      });
  sim::Simulator sim(scenario, 2);
  const sim::SimMetrics metrics = sim.run(coordinator);
  ASSERT_GE(progress.size(), 4u);
  EXPECT_DOUBLE_EQ(progress[0], 0.0);
  EXPECT_NEAR(progress[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(progress[2], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(progress[3], 1.0);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_LT(deadline_frac[i], deadline_frac[i - 1]);
  EXPECT_GE(metrics.succeeded, 1u);
}

TEST(Observation, InstanceFlagAppearsAfterPlacement) {
  // After the first flow places an instance at the ingress, a second flow
  // arriving while it is warm must observe X[self] = 1.
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.interarrival = 7.0;
  options.end_time = 15.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(5.0, 0.0, 60.0), options);
  ObservationBuilder builder(scenario.network().max_degree());
  std::vector<double> x_self;
  LambdaCoordinator coordinator(
      [&](const sim::Simulator& sim, const sim::Flow& flow, net::NodeId node) -> int {
        if (!sim.fully_processed(flow)) {
          const auto& obs = builder.build(sim, flow, node);
          x_self.push_back(obs[9]);
          return 0;
        }
        return node == 0 ? 1 : 2;
      });
  sim::Simulator sim(scenario, 1);
  sim.run(coordinator);
  ASSERT_EQ(x_self.size(), 2u);
  EXPECT_DOUBLE_EQ(x_self[0], 0.0);
  EXPECT_DOUBLE_EQ(x_self[1], 1.0);
}

TEST(Observation, FullyProcessedFlowSeesZeroDemandAndNoInstances) {
  TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 15.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ObservationBuilder builder(scenario.network().max_degree());
  std::vector<double> done_obs;
  LambdaCoordinator coordinator(
      [&](const sim::Simulator& sim, const sim::Flow& flow, net::NodeId node) -> int {
        if (sim.fully_processed(flow)) {
          if (done_obs.empty()) done_obs = builder.build(sim, flow, node);
          return node == 0 ? 1 : 2;
        }
        return 0;
      });
  sim::Simulator sim(scenario, 1);
  sim.run(coordinator);
  ASSERT_EQ(done_obs.size(), 12u);
  EXPECT_DOUBLE_EQ(done_obs[0], 1.0);  // progress complete
  // X: real entries are 0 even though an instance exists at this node —
  // there is no "requested component" any more.
  EXPECT_DOUBLE_EQ(done_obs[9], 0.0);
  EXPECT_DOUBLE_EQ(done_obs[10], 0.0);
}

TEST(Observation, RejectsNodeAboveLayoutDegree) {
  // Builder sized for degree 1 must refuse a degree-2 node.
  TinyScenarioOptions options;
  options.ingress = {1};  // node 1 has two neighbours
  options.egress = 2;
  options.end_time = 15.0;
  const sim::Scenario scenario =
      tiny_scenario(test::line3(), test::one_component_catalog(), options);
  ObservationBuilder small(1);
  bool threw = false;
  LambdaCoordinator coordinator(
      [&](const sim::Simulator& sim, const sim::Flow& flow, net::NodeId node) -> int {
        try {
          small.build(sim, flow, node);
        } catch (const std::invalid_argument&) {
          threw = true;
        }
        return 0;
      });
  sim::Simulator sim(scenario, 1);
  sim.run(coordinator);
  EXPECT_TRUE(threw);
}

TEST(Observation, BoundFastPathBitIdenticalToGeneric) {
  // bind() precomputes flat per-node tables (CSR neighbours, delay-via,
  // pre-clamped normalisers) so build() is pure array indexing — but the
  // arithmetic is operation-for-operation the generic path, so every
  // observation must be bit-identical, at every decision of a real episode.
  const sim::Scenario scenario = sim::make_base_scenario(3).with_end_time(400.0);
  const std::size_t max_degree = scenario.network().max_degree();
  ObservationBuilder bound(max_degree);
  ObservationBuilder generic(max_degree);
  std::size_t decisions = 0;
  std::size_t byte_mismatches = 0;
  LambdaCoordinator coordinator(
      [&](const sim::Simulator& sim, const sim::Flow& flow, net::NodeId node) -> int {
        if (!bound.bound()) bound.bind(sim);
        const std::vector<double>& fast = bound.build(sim, flow, node);
        const std::vector<double>& slow = generic.build(sim, flow, node);
        if (std::memcmp(fast.data(), slow.data(), fast.size() * sizeof(double)) != 0) {
          ++byte_mismatches;
        }
        ++decisions;
        return 0;
      });
  sim::Simulator sim(scenario, 1);
  sim.run(coordinator);
  EXPECT_GT(decisions, 100u);
  EXPECT_EQ(byte_mismatches, 0u);
}

TEST(Observation, BindDispatchesOnSimulatorIdentity) {
  // A builder bound to one simulator must fall back to the generic path for
  // a different one (fresh episode, new Simulator instance) instead of
  // reading stale tables.
  const sim::Scenario scenario = sim::make_base_scenario(3).with_end_time(50.0);
  const std::size_t max_degree = scenario.network().max_degree();
  ObservationBuilder builder(max_degree);
  ObservationBuilder reference(max_degree);
  std::size_t mismatches = 0;
  auto run_once = [&](std::uint64_t seed) {
    LambdaCoordinator coordinator(
        [&](const sim::Simulator& sim, const sim::Flow& flow, net::NodeId node) -> int {
          // Never re-bound: after the first episode, `builder` holds tables
          // for a dead Simulator and must detect the mismatch.
          const std::vector<double>& a = builder.build(sim, flow, node);
          const std::vector<double>& b = reference.build(sim, flow, node);
          if (std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) ++mismatches;
          return 0;
        });
    sim::Simulator sim(scenario, seed);
    if (!builder.bound()) builder.bind(sim);
    sim.run(coordinator);
  };
  run_once(1);
  run_once(2);  // different Simulator: bound tables must not be used
  EXPECT_EQ(mismatches, 0u);
}

}  // namespace
}  // namespace dosc::core
