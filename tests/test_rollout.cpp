#include <gtest/gtest.h>

#include <cmath>

#include "rl/rollout.hpp"

namespace dosc::rl {
namespace {

ActorCritic make_net() {
  ActorCriticConfig config;
  config.obs_dim = 3;
  config.num_actions = 2;
  config.hidden = {4};
  config.seed = 1;
  return ActorCritic(config);
}

std::vector<double> obs(double v) { return {v, v, v}; }

TEST(TrajectoryBuffer, TerminalDiscountedReturns) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.5);
  buffer.record_decision(1, obs(0.1), 0);
  buffer.record_reward(1, 1.0);
  buffer.record_decision(1, obs(0.2), 1);
  buffer.record_reward(1, 2.0);
  buffer.record_decision(1, obs(0.3), 0);
  buffer.record_reward(1, 4.0);
  buffer.finish(1);
  EXPECT_EQ(buffer.completed_steps(), 3u);

  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 3u);
  // Returns with gamma 0.5: R2 = 4; R1 = 2 + 0.5*4 = 4; R0 = 1 + 0.5*4 = 3.
  EXPECT_DOUBLE_EQ(batch.returns[2], 4.0);
  EXPECT_DOUBLE_EQ(batch.returns[1], 4.0);
  EXPECT_DOUBLE_EQ(batch.returns[0], 3.0);
  EXPECT_EQ(batch.actions[1], 1);
  EXPECT_DOUBLE_EQ(batch.obs(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(batch.obs(2, 2), 0.3);
  // Drained: next drain is empty.
  EXPECT_EQ(buffer.drain(net, 3).size(), 0u);
}

TEST(TrajectoryBuffer, RewardCreditsMostRecentDecision) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(1.0);
  buffer.record_decision(7, obs(0.0), 0);
  buffer.record_reward(7, 1.0);
  buffer.record_reward(7, 2.0);  // both accrue to step 0
  buffer.record_decision(7, obs(1.0), 1);
  buffer.record_reward(7, 5.0);
  buffer.finish(7);
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 2u);
  // gamma=1: R0 = (1+2) + 5 = 8, R1 = 5.
  EXPECT_DOUBLE_EQ(batch.returns[0], 8.0);
  EXPECT_DOUBLE_EQ(batch.returns[1], 5.0);
}

TEST(TrajectoryBuffer, RewardBeforeAnyDecisionIgnored) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  buffer.record_reward(3, 100.0);  // no decision yet: dropped
  buffer.record_decision(3, obs(0.5), 0);
  buffer.record_reward(3, 1.0);
  buffer.finish(3);
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_DOUBLE_EQ(batch.returns[0], 1.0);
}

TEST(TrajectoryBuffer, FinishUnknownKeyIsNoOp) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  buffer.finish(99);
  EXPECT_EQ(buffer.drain(net, 3).size(), 0u);
}

TEST(TrajectoryBuffer, InterleavedFlowsStaySeparate) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(1.0);
  buffer.record_decision(1, obs(0.1), 0);
  buffer.record_decision(2, obs(0.9), 1);
  buffer.record_reward(1, 10.0);
  buffer.record_reward(2, -10.0);
  buffer.finish(1);
  buffer.finish(2);
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 2u);
  // Flow 1's trajectory was finished first.
  EXPECT_DOUBLE_EQ(batch.returns[0], 10.0);
  EXPECT_DOUBLE_EQ(batch.returns[1], -10.0);
}

TEST(TrajectoryBuffer, TruncationBootstrapsWithCritic) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.5);
  const std::vector<double> last = obs(0.7);
  buffer.record_decision(4, obs(0.2), 0);
  buffer.record_reward(4, 1.0);
  buffer.record_decision(4, last, 1);
  buffer.record_reward(4, 2.0);
  EXPECT_EQ(buffer.open_trajectories(), 1u);
  buffer.truncate_all();
  EXPECT_EQ(buffer.open_trajectories(), 0u);

  const double v = net.value(last);
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_NEAR(batch.returns[1], 2.0 + 0.5 * v, 1e-12);
  EXPECT_NEAR(batch.returns[0], 1.0 + 0.5 * batch.returns[1], 1e-12);
}

TEST(TrajectoryBuffer, DrainChecksObsDim) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  buffer.record_decision(1, {0.1, 0.2}, 0);  // wrong size (2 != 3)
  buffer.finish(1);
  EXPECT_THROW(buffer.drain(net, 3), std::invalid_argument);
}

TEST(TrajectoryBuffer, DrainKeepsOpenTrajectories) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  buffer.record_decision(1, obs(0.1), 0);
  buffer.record_reward(1, 2.0);
  buffer.finish(1);
  buffer.record_decision(2, obs(0.5), 1);  // still open
  buffer.record_reward(2, 7.0);

  // Draining hands out only the finished trajectory; flow 2 stays open and
  // keeps accruing until its own terminal event.
  const Batch first = buffer.drain(net, 3);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_DOUBLE_EQ(first.returns[0], 2.0);
  EXPECT_EQ(buffer.open_trajectories(), 1u);

  buffer.record_reward(2, 1.0);
  buffer.finish(2);
  const Batch second = buffer.drain(net, 3);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_DOUBLE_EQ(second.returns[0], 8.0);
  EXPECT_EQ(buffer.open_trajectories(), 0u);
}

TEST(TrajectoryBuffer, HandComputedFourStepReturns) {
  // Full backward recursion R_t = r_t + gamma * R_{t+1} on a 4-step
  // trajectory with gamma = 0.9, checked against hand-computed values.
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  const double rewards[4] = {1.0, -2.0, 0.5, 10.0};
  for (int t = 0; t < 4; ++t) {
    buffer.record_decision(11, obs(0.1 * t), t % 2);
    buffer.record_reward(11, rewards[t]);
  }
  buffer.finish(11);
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 4u);
  const double r3 = 10.0;
  const double r2 = 0.5 + 0.9 * r3;   // 9.5
  const double r1 = -2.0 + 0.9 * r2;  // 6.55
  const double r0 = 1.0 + 0.9 * r1;   // 6.895
  EXPECT_DOUBLE_EQ(batch.returns[3], r3);
  EXPECT_DOUBLE_EQ(batch.returns[2], r2);
  EXPECT_DOUBLE_EQ(batch.returns[1], r1);
  EXPECT_DOUBLE_EQ(batch.returns[0], r0);
}

TEST(TrajectoryBuffer, EmptyTrajectoriesAreDiscarded) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  buffer.record_reward(1, 5.0);  // opens nothing
  buffer.truncate_all();
  EXPECT_EQ(buffer.drain(net, 3).size(), 0u);
}

}  // namespace
}  // namespace dosc::rl
