#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "rl/rollout.hpp"
#include "util/rng.hpp"

namespace dosc::rl {
namespace {

ActorCritic make_net() {
  ActorCriticConfig config;
  config.obs_dim = 3;
  config.num_actions = 2;
  config.hidden = {4};
  config.seed = 1;
  return ActorCritic(config);
}

std::vector<double> obs(double v) { return {v, v, v}; }

TEST(TrajectoryBuffer, TerminalDiscountedReturns) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.5);
  buffer.record_decision(1, obs(0.1), 0);
  buffer.record_reward(1, 1.0);
  buffer.record_decision(1, obs(0.2), 1);
  buffer.record_reward(1, 2.0);
  buffer.record_decision(1, obs(0.3), 0);
  buffer.record_reward(1, 4.0);
  buffer.finish(1);
  EXPECT_EQ(buffer.completed_steps(), 3u);

  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 3u);
  // Returns with gamma 0.5: R2 = 4; R1 = 2 + 0.5*4 = 4; R0 = 1 + 0.5*4 = 3.
  EXPECT_DOUBLE_EQ(batch.returns[2], 4.0);
  EXPECT_DOUBLE_EQ(batch.returns[1], 4.0);
  EXPECT_DOUBLE_EQ(batch.returns[0], 3.0);
  EXPECT_EQ(batch.actions[1], 1);
  EXPECT_DOUBLE_EQ(batch.obs(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(batch.obs(2, 2), 0.3);
  // Drained: next drain is empty.
  EXPECT_EQ(buffer.drain(net, 3).size(), 0u);
}

TEST(TrajectoryBuffer, RewardCreditsMostRecentDecision) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(1.0);
  buffer.record_decision(7, obs(0.0), 0);
  buffer.record_reward(7, 1.0);
  buffer.record_reward(7, 2.0);  // both accrue to step 0
  buffer.record_decision(7, obs(1.0), 1);
  buffer.record_reward(7, 5.0);
  buffer.finish(7);
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 2u);
  // gamma=1: R0 = (1+2) + 5 = 8, R1 = 5.
  EXPECT_DOUBLE_EQ(batch.returns[0], 8.0);
  EXPECT_DOUBLE_EQ(batch.returns[1], 5.0);
}

TEST(TrajectoryBuffer, RewardBeforeAnyDecisionIgnored) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  buffer.record_reward(3, 100.0);  // no decision yet: dropped
  buffer.record_decision(3, obs(0.5), 0);
  buffer.record_reward(3, 1.0);
  buffer.finish(3);
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_DOUBLE_EQ(batch.returns[0], 1.0);
}

TEST(TrajectoryBuffer, FinishUnknownKeyIsNoOp) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  buffer.finish(99);
  EXPECT_EQ(buffer.drain(net, 3).size(), 0u);
}

TEST(TrajectoryBuffer, InterleavedFlowsStaySeparate) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(1.0);
  buffer.record_decision(1, obs(0.1), 0);
  buffer.record_decision(2, obs(0.9), 1);
  buffer.record_reward(1, 10.0);
  buffer.record_reward(2, -10.0);
  buffer.finish(1);
  buffer.finish(2);
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 2u);
  // Flow 1's trajectory was finished first.
  EXPECT_DOUBLE_EQ(batch.returns[0], 10.0);
  EXPECT_DOUBLE_EQ(batch.returns[1], -10.0);
}

TEST(TrajectoryBuffer, TruncationBootstrapsWithCritic) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.5);
  const std::vector<double> last = obs(0.7);
  buffer.record_decision(4, obs(0.2), 0);
  buffer.record_reward(4, 1.0);
  buffer.record_decision(4, last, 1);
  buffer.record_reward(4, 2.0);
  EXPECT_EQ(buffer.open_trajectories(), 1u);
  buffer.truncate_all();
  EXPECT_EQ(buffer.open_trajectories(), 0u);

  const double v = net.value(last);
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_NEAR(batch.returns[1], 2.0 + 0.5 * v, 1e-12);
  EXPECT_NEAR(batch.returns[0], 1.0 + 0.5 * batch.returns[1], 1e-12);
}

TEST(TrajectoryBuffer, DrainChecksObsDim) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  const std::vector<double> short_obs{0.1, 0.2};
  buffer.record_decision(1, short_obs, 0);  // wrong size (2 != 3)
  buffer.finish(1);
  EXPECT_THROW(buffer.drain(net, 3), std::invalid_argument);
}

TEST(TrajectoryBuffer, DrainKeepsOpenTrajectories) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  buffer.record_decision(1, obs(0.1), 0);
  buffer.record_reward(1, 2.0);
  buffer.finish(1);
  buffer.record_decision(2, obs(0.5), 1);  // still open
  buffer.record_reward(2, 7.0);

  // Draining hands out only the finished trajectory; flow 2 stays open and
  // keeps accruing until its own terminal event.
  const Batch first = buffer.drain(net, 3);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_DOUBLE_EQ(first.returns[0], 2.0);
  EXPECT_EQ(buffer.open_trajectories(), 1u);

  buffer.record_reward(2, 1.0);
  buffer.finish(2);
  const Batch second = buffer.drain(net, 3);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_DOUBLE_EQ(second.returns[0], 8.0);
  EXPECT_EQ(buffer.open_trajectories(), 0u);
}

TEST(TrajectoryBuffer, HandComputedFourStepReturns) {
  // Full backward recursion R_t = r_t + gamma * R_{t+1} on a 4-step
  // trajectory with gamma = 0.9, checked against hand-computed values.
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  const double rewards[4] = {1.0, -2.0, 0.5, 10.0};
  for (int t = 0; t < 4; ++t) {
    buffer.record_decision(11, obs(0.1 * t), t % 2);
    buffer.record_reward(11, rewards[t]);
  }
  buffer.finish(11);
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 4u);
  const double r3 = 10.0;
  const double r2 = 0.5 + 0.9 * r3;   // 9.5
  const double r1 = -2.0 + 0.9 * r2;  // 6.55
  const double r0 = 1.0 + 0.9 * r1;   // 6.895
  EXPECT_DOUBLE_EQ(batch.returns[3], r3);
  EXPECT_DOUBLE_EQ(batch.returns[2], r2);
  EXPECT_DOUBLE_EQ(batch.returns[1], r1);
  EXPECT_DOUBLE_EQ(batch.returns[0], r0);
}

TEST(TrajectoryBuffer, EmptyTrajectoriesAreDiscarded) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  buffer.record_reward(1, 5.0);  // opens nothing
  buffer.truncate_all();
  EXPECT_EQ(buffer.drain(net, 3).size(), 0u);
}

TEST(TrajectoryBuffer, TruncateClosesInFirstDecisionOrder) {
  // The pooled buffer's determinism contract: truncation emits still-open
  // trajectories in the order each flow made its first decision —
  // regardless of key values or interleaving — not hash-table order.
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(1.0);
  const std::uint64_t keys[4] = {901, 3, 77, 12};
  for (int round = 0; round < 2; ++round) {
    for (int k = 0; k < 4; ++k) {
      buffer.record_decision(keys[k], obs(0.1), 0);
      buffer.record_reward(keys[k], static_cast<double>(k + 1));
    }
  }
  buffer.truncate_all();
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 8u);
  // Each flow contributed 2 steps; flows appear in first-decision order, so
  // the last step of flow k (reward k+1, gamma 1, truncated bootstrap) sits
  // at row 2k + 1 with return (k+1) + V(last obs).
  for (int k = 0; k < 4; ++k) {
    const double bootstrap = net.value(obs(0.1));
    EXPECT_DOUBLE_EQ(batch.returns[2 * k + 1], static_cast<double>(k + 1) + bootstrap);
  }
}

TEST(TrajectoryBuffer, DrainWithBehaviorLogpCarriesRecordedValues) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(0.9);
  buffer.record_decision(5, obs(0.2), 0, -0.25);
  buffer.record_reward(5, 1.0);
  buffer.record_decision(5, obs(0.3), 1, -1.5);
  buffer.record_reward(5, 2.0);
  buffer.finish(5);

  Batch batch;
  buffer.drain_into(batch, net, 3, /*with_behavior_logp=*/true);
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_EQ(batch.behavior_logp.size(), 2u);
  EXPECT_DOUBLE_EQ(batch.behavior_logp[0], -0.25);
  EXPECT_DOUBLE_EQ(batch.behavior_logp[1], -1.5);

  // Without the flag the batch stays on-policy-shaped (empty vector).
  buffer.record_decision(6, obs(0.4), 0, -0.5);
  buffer.finish(6);
  buffer.drain_into(batch, net, 3);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(batch.behavior_logp.empty());
}

TEST(TrajectoryBuffer, PoolRecyclesAcrossManyEpisodesWithoutLeakingState) {
  // Heavy churn across key reuse, growth, and repeated drains: the pooled
  // storage and open-addressing table must keep producing exact returns.
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(1.0);
  Batch batch;
  for (int episode = 0; episode < 20; ++episode) {
    for (std::uint64_t flow = 0; flow < 50; ++flow) {
      const std::uint64_t key = flow * 7 + static_cast<std::uint64_t>(episode % 3);
      buffer.record_decision(key, obs(0.1), 0);
      buffer.record_reward(key, 1.0);
      if (flow % 2 == 0) buffer.finish(key);
    }
    buffer.truncate_all();
    buffer.drain_into(batch, net, 3);
    ASSERT_EQ(batch.size(), 50u) << "episode " << episode;
    EXPECT_EQ(buffer.open_trajectories(), 0u);
  }
}

TEST(TrajectoryBuffer, ReserveMidEpisodePreservesOpenTrajectories) {
  // reserve() pre-warms the pools (test_train_alloc pins the allocation
  // contract); here we pin that calling it with trajectories already open
  // changes no recorded data — growth past the reserved bounds included.
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(1.0);
  buffer.record_decision(5, obs(0.1), 1);
  buffer.record_reward(5, 2.0);
  buffer.reserve(/*max_flows=*/64, /*max_steps_per_flow=*/4, /*obs_dim=*/3);
  buffer.record_decision(5, obs(0.2), 0);
  buffer.record_reward(5, 3.0);
  // 128 flows exceeds the reserved 64 and forces pool + table growth with
  // the reserved slots in play.
  for (std::uint64_t flow = 100; flow < 228; ++flow) {
    buffer.record_decision(flow, obs(0.3), 0);
    buffer.record_reward(flow, 1.0);
    buffer.finish(flow);
  }
  buffer.finish(5);
  const Batch batch = buffer.drain(net, 3);
  ASSERT_EQ(batch.size(), 130u);
  // Flow 5 finished last: its two steps are the final rows, with the
  // pre-reserve decision intact (gamma 1: returns 5 then 3).
  EXPECT_EQ(batch.actions[128], 1);
  EXPECT_DOUBLE_EQ(batch.returns[128], 5.0);
  EXPECT_DOUBLE_EQ(batch.obs(128, 0), 0.1);
  EXPECT_EQ(batch.actions[129], 0);
  EXPECT_DOUBLE_EQ(batch.returns[129], 3.0);
  EXPECT_DOUBLE_EQ(batch.obs(129, 0), 0.2);
}

TEST(MergeBatches, ConcatenatesUnderCapAndMergesLogp) {
  const ActorCritic net = make_net();
  auto make_batch = [&](std::uint64_t key, double reward, double logp, int steps) {
    TrajectoryBuffer buffer(1.0);
    for (int s = 0; s < steps; ++s) {
      buffer.record_decision(key, obs(0.1 * (s + 1)), s % 2, logp);
      buffer.record_reward(key, reward);
    }
    buffer.finish(key);
    Batch batch;
    buffer.drain_into(batch, net, 3, /*with_behavior_logp=*/true);
    return batch;
  };
  const std::vector<Batch> batches = {make_batch(1, 1.0, -0.1, 2),
                                      make_batch(2, 2.0, -0.2, 3)};
  Batch merged;
  util::Rng rng(9);
  merge_batches_into(merged, batches, 3, /*max_steps=*/100, rng);
  ASSERT_EQ(merged.size(), 5u);
  ASSERT_EQ(merged.behavior_logp.size(), 5u);
  // Under the cap the merge is a plain concatenation in batch order.
  EXPECT_DOUBLE_EQ(merged.behavior_logp[0], -0.1);
  EXPECT_DOUBLE_EQ(merged.behavior_logp[2], -0.2);
  EXPECT_DOUBLE_EQ(merged.returns[0], 2.0);  // gamma 1: 2 steps x reward 1
  EXPECT_DOUBLE_EQ(merged.returns[2], 6.0);  // 3 steps x reward 2
  EXPECT_DOUBLE_EQ(merged.obs(4, 0), 0.3);

  // If any input lacks behavior_logp the merged batch drops it entirely.
  std::vector<Batch> mixed = {make_batch(1, 1.0, -0.1, 2), make_batch(2, 2.0, -0.2, 3)};
  mixed[1].behavior_logp.clear();
  merge_batches_into(merged, mixed, 3, 100, rng);
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_TRUE(merged.behavior_logp.empty());
}

TEST(MergeBatches, ReservoirSubsampleCapsSizeDeterministically) {
  const ActorCritic net = make_net();
  TrajectoryBuffer buffer(1.0);
  for (std::uint64_t flow = 0; flow < 10; ++flow) {
    for (int s = 0; s < 4; ++s) {
      buffer.record_decision(flow, obs(0.01 * static_cast<double>(flow)), 0);
      buffer.record_reward(flow, 1.0);
    }
    buffer.finish(flow);
  }
  Batch big;
  buffer.drain_into(big, net, 3);
  ASSERT_EQ(big.size(), 40u);

  const std::vector<Batch> batches = {big};
  Batch a;
  Batch b;
  util::Rng rng_a(123);
  util::Rng rng_b(123);
  merge_batches_into(a, batches, 3, /*max_steps=*/16, rng_a);
  merge_batches_into(b, batches, 3, /*max_steps=*/16, rng_b);
  ASSERT_EQ(a.size(), 16u);
  ASSERT_EQ(b.size(), 16u);
  // Same seed, same inputs: the subsample is a pure function of both.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.actions[i], b.actions[i]);
    EXPECT_DOUBLE_EQ(a.returns[i], b.returns[i]);
    EXPECT_DOUBLE_EQ(a.obs(i, 0), b.obs(i, 0));
  }
}

}  // namespace
}  // namespace dosc::rl
