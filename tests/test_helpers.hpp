// Shared fixtures for the dosc test suite: tiny deterministic networks,
// scripted coordinators, and scenario builders small enough to reason about
// by hand.
#pragma once

#include <deque>
#include <functional>

#include "net/network.hpp"
#include "sim/coordinator.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace dosc::test {

/// A -- B -- C line. Link delays 2 ms, capacities as given.
inline net::Network line3(double link_capacity = 10.0, double link_delay = 2.0) {
  net::NetworkBuilder b("line3");
  const auto a = b.add_node("A");
  const auto m = b.add_node("B");
  const auto c = b.add_node("C");
  b.add_link(a, m, link_delay, link_capacity);
  b.add_link(m, c, link_delay, link_capacity);
  return std::move(b).build();
}

/// Diamond: A connects to B and C, both connect to D. Distinct delays so
/// shortest paths are unambiguous: A-B-D costs 2+2, A-C-D costs 3+3.
inline net::Network diamond(double cap_fast = 10.0, double cap_slow = 10.0) {
  net::NetworkBuilder b("diamond");
  const auto a = b.add_node("A");
  const auto bb = b.add_node("B");
  const auto c = b.add_node("C");
  const auto d = b.add_node("D");
  b.add_link(a, bb, 2.0, cap_fast);
  b.add_link(bb, d, 2.0, cap_fast);
  b.add_link(a, c, 3.0, cap_slow);
  b.add_link(c, d, 3.0, cap_slow);
  return std::move(b).build();
}

/// Single-service catalog with one component: d_c = 5, r = lambda,
/// configurable startup/idle.
inline sim::ServiceCatalog one_component_catalog(double processing_delay = 5.0,
                                                 double startup_delay = 0.0,
                                                 double idle_timeout = 50.0) {
  sim::ServiceCatalog catalog;
  const auto c = catalog.add_component({.name = "c0",
                                        .processing_delay = processing_delay,
                                        .resource_per_rate = 1.0,
                                        .resource_fixed = 0.0,
                                        .startup_delay = startup_delay,
                                        .idle_timeout = idle_timeout});
  catalog.add_service({"svc", {c}});
  return catalog;
}

/// Replays a fixed action sequence; repeats the last action when exhausted.
class ScriptedCoordinator final : public sim::Coordinator {
 public:
  explicit ScriptedCoordinator(std::deque<int> actions) : actions_(std::move(actions)) {}

  int decide(const sim::Simulator&, const sim::Flow&, net::NodeId) override {
    if (actions_.size() > 1) {
      const int a = actions_.front();
      actions_.pop_front();
      return a;
    }
    return actions_.empty() ? 0 : actions_.front();
  }

 private:
  std::deque<int> actions_;
};

/// Calls a lambda per decision.
class LambdaCoordinator final : public sim::Coordinator {
 public:
  using Fn = std::function<int(const sim::Simulator&, const sim::Flow&, net::NodeId)>;
  explicit LambdaCoordinator(Fn fn) : fn_(std::move(fn)) {}
  int decide(const sim::Simulator& s, const sim::Flow& f, net::NodeId v) override {
    return fn_(s, f, v);
  }

 private:
  Fn fn_;
};

/// Records every flow lifecycle event.
class RecordingObserver final : public sim::FlowObserver {
 public:
  struct Event {
    enum class Kind { kCompleted, kDropped, kProcessed, kForwarded, kParked } kind;
    sim::FlowId flow;
    double time;
    sim::DropReason reason = sim::DropReason::kExpired;
  };

  void on_completed(const sim::Flow& f, double t) override {
    events.push_back({Event::Kind::kCompleted, f.id, t});
  }
  void on_dropped(const sim::Flow& f, sim::DropReason r, double t) override {
    events.push_back({Event::Kind::kDropped, f.id, t, r});
  }
  void on_component_processed(const sim::Flow& f, net::NodeId, double t) override {
    events.push_back({Event::Kind::kProcessed, f.id, t});
  }
  void on_forwarded(const sim::Flow& f, net::NodeId, net::LinkId, double t) override {
    events.push_back({Event::Kind::kForwarded, f.id, t});
  }
  void on_parked(const sim::Flow& f, net::NodeId, double t) override {
    events.push_back({Event::Kind::kParked, f.id, t});
  }

  std::size_t count(Event::Kind kind) const {
    std::size_t n = 0;
    for (const Event& e : events) {
      if (e.kind == kind) ++n;
    }
    return n;
  }

  std::vector<Event> events;
};

/// Scenario on an explicit network with fixed (non-random) capacities:
/// node capacities are set before the Scenario is built, and the capacity
/// draw range is pinned so Simulator's per-seed draw reproduces them.
struct TinyScenarioOptions {
  double node_capacity = 10.0;
  double link_cap_lo = 10.0;
  double link_cap_hi = 10.0;
  std::vector<net::NodeId> ingress{0};
  net::NodeId egress = 0;
  double end_time = 100.0;
  double deadline = 100.0;
  double flow_duration = 1.0;
  double interarrival = 10.0;
};

inline sim::Scenario tiny_scenario(net::Network network, sim::ServiceCatalog catalog,
                                   const TinyScenarioOptions& options) {
  sim::ScenarioConfig config;
  config.name = "tiny";
  // Pin the random capacity draw to a point mass so tests are exact.
  config.node_cap_lo = config.node_cap_hi = options.node_capacity;
  config.link_cap_lo = options.link_cap_lo;
  config.link_cap_hi = options.link_cap_hi;
  config.ingress = options.ingress;
  config.egress = options.egress;
  config.end_time = options.end_time;
  config.traffic = traffic::TrafficSpec::fixed(options.interarrival);
  config.flows = {sim::FlowTemplate{.service = 0,
                                    .rate = 1.0,
                                    .duration = options.flow_duration,
                                    .deadline = options.deadline,
                                    .weight = 1.0}};
  return sim::Scenario(std::move(config), std::move(catalog), std::move(network));
}

}  // namespace dosc::test
