#include <gtest/gtest.h>

#include <cmath>

#include "rl/actor_critic.hpp"

namespace dosc::rl {
namespace {

TEST(Softmax, SumsToOneAndOrders) {
  const std::vector<double> logits{1.0, 2.0, 3.0};
  const std::vector<double> p = softmax(logits);
  double sum = 0.0;
  for (const double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Softmax, StableUnderLargeLogits) {
  const std::vector<double> logits{1000.0, 1001.0, 999.0};
  const std::vector<double> p = softmax(logits);
  for (const double v : p) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  EXPECT_GT(p[1], p[0]);
}

TEST(Softmax, LogSoftmaxConsistent) {
  const std::vector<double> logits{0.3, -1.2, 2.0, 0.0};
  const std::vector<double> p = softmax(logits);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_NEAR(log_softmax_at(logits, i), std::log(p[i]), 1e-10);
  }
}

TEST(Softmax, EntropyBounds) {
  // Uniform logits -> max entropy log(n); a dominant logit -> near 0.
  EXPECT_NEAR(softmax_entropy(std::vector<double>{1.0, 1.0, 1.0, 1.0}), std::log(4.0), 1e-9);
  EXPECT_LT(softmax_entropy(std::vector<double>{100.0, 0.0, 0.0, 0.0}), 1e-6);
}

TEST(ActorCritic, ConstructionValidates) {
  ActorCriticConfig bad;
  bad.obs_dim = 0;
  bad.num_actions = 3;
  EXPECT_THROW(ActorCritic{bad}, std::invalid_argument);
}

ActorCritic make_net(std::uint64_t seed = 1) {
  ActorCriticConfig config;
  config.obs_dim = 6;
  config.num_actions = 4;
  config.hidden = {16, 16};
  config.seed = seed;
  return ActorCritic(config);
}

TEST(ActorCritic, ProbsValidDistribution) {
  const ActorCritic net = make_net();
  const std::vector<double> obs(6, 0.3);
  const std::vector<double> p = net.action_probs(obs);
  ASSERT_EQ(p.size(), 4u);
  double sum = 0.0;
  for (const double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ActorCritic, ObservationSizeChecked) {
  const ActorCritic net = make_net();
  util::Rng rng(1);
  EXPECT_THROW(net.action_probs(std::vector<double>(5)), std::invalid_argument);
  EXPECT_THROW(net.value(std::vector<double>(7)), std::invalid_argument);
}

TEST(ActorCritic, SamplingMatchesProbs) {
  const ActorCritic net = make_net(3);
  const std::vector<double> obs{0.1, -0.5, 1.0, 0.0, 0.7, -1.0};
  const std::vector<double> p = net.action_probs(obs);
  util::Rng rng(4);
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[net.sample_action(obs, rng)];
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_NEAR(static_cast<double>(counts[a]) / n, p[a], 0.02) << "action " << a;
  }
}

TEST(ActorCritic, GreedyIsArgmax) {
  const ActorCritic net = make_net(5);
  util::Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> obs(6);
    for (double& o : obs) o = rng.uniform(-1.0, 1.0);
    const std::vector<double> p = net.action_probs(obs);
    const int greedy = net.greedy_action(obs);
    for (std::size_t a = 0; a < p.size(); ++a) {
      EXPECT_LE(p[a], p[static_cast<std::size_t>(greedy)] + 1e-12);
    }
  }
}

TEST(ActorCritic, ParameterRoundTripPreservesBehaviour) {
  const ActorCritic a = make_net(7);
  ActorCritic b = make_net(8);
  b.set_parameters(a.get_parameters());
  const std::vector<double> obs{0.2, 0.4, -0.3, 0.9, -0.8, 0.0};
  const auto pa = a.action_probs(obs);
  const auto pb = b.action_probs(obs);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  EXPECT_DOUBLE_EQ(a.value(obs), b.value(obs));
  EXPECT_THROW(b.set_parameters(std::vector<double>(5)), std::invalid_argument);
}

TEST(ActorCritic, DifferentSeedsDifferentPolicies) {
  const ActorCritic a = make_net(1);
  const ActorCritic b = make_net(2);
  const std::vector<double> obs(6, 0.5);
  const auto pa = a.action_probs(obs);
  const auto pb = b.action_probs(obs);
  bool differs = false;
  for (std::size_t i = 0; i < pa.size(); ++i) differs |= (std::abs(pa[i] - pb[i]) > 1e-9);
  EXPECT_TRUE(differs);
}

TEST(ActorCritic, PaperDefaultsAreTwoHiddenLayers) {
  ActorCriticConfig config;
  EXPECT_EQ(config.hidden.size(), 2u);
  EXPECT_EQ(config.hidden[0], 256u);
  EXPECT_EQ(config.hidden[1], 256u);
}

}  // namespace
}  // namespace dosc::rl
