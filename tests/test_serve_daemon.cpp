// Daemon lifecycle regressions (serve/daemon.hpp): the reload poll's file
// stamp must see a same-size rewrite within one second (nanosecond mtime),
// and run_daemon must restore whatever signal handlers the embedding
// process had installed, on every exit path.
#include <gtest/gtest.h>

#include <csignal>
#include <fstream>
#include <string>
#include <thread>

#include "core/policy_io.hpp"
#include "serve/daemon.hpp"
#include "sim/scenario.hpp"

using namespace dosc;

namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

void sentinel_handler(int) {}

/// Rewrite `path` with its current contents — same size, new mtime.
void rewrite_in_place(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  const std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

serve::DaemonOptions daemon_fixture(const char* tag) {
  const sim::Scenario scenario = sim::make_base_scenario();
  serve::DaemonOptions options;
  options.scenario_path = temp_path((std::string("daemon_scenario_") + tag + ".json").c_str());
  options.policy_path = temp_path((std::string("daemon_policy_") + tag + ".json").c_str());
  scenario.save(options.scenario_path);
  core::save_policy(serve::make_untrained_policy(scenario, 8, 7), options.policy_path);
  options.server.port = 0;  // ephemeral
  options.announce_port = false;
  return options;
}

}  // namespace

TEST(ServeDaemon, FileStampSeesSameSizeRewriteWithinOneSecond) {
  const std::string path = temp_path("stamp_probe.bin");
  { std::ofstream(path, std::ios::binary) << "snapshot-payload"; }
  const serve::FileStamp first = serve::policy_file_stamp(path);
  ASSERT_TRUE(first.loadable());

  // Both writes land in the same wall-clock second: only sub-second mtime
  // resolution can tell them apart, since the size is unchanged.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  rewrite_in_place(path);
  const serve::FileStamp second = serve::policy_file_stamp(path);
  ASSERT_TRUE(second.loadable());
  EXPECT_EQ(second.size, first.size);
  EXPECT_NE(second, first) << "second-granularity stamp missed a same-size rewrite";
}

TEST(ServeDaemon, MissingFileStampIsNotLoadable) {
  const serve::FileStamp missing = serve::policy_file_stamp(temp_path("no_such_policy.json"));
  EXPECT_FALSE(missing.loadable());
  EXPECT_EQ(missing, serve::FileStamp{});
}

TEST(ServeDaemon, HotSwapsSameSizeRewriteWithinOneSecond) {
  serve::DaemonOptions options = daemon_fixture("hotswap");
  options.reload_ms = 50;
  options.duration_s = 1.5;
  serve::ServerStats stats;
  options.final_stats = &stats;

  std::thread daemon([&options]() { serve::run_daemon(options); });
  // Two same-size rewrites of the snapshot, well inside the daemon's run
  // and (typically) inside one second of the original write.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  rewrite_in_place(options.policy_path);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  rewrite_in_place(options.policy_path);
  daemon.join();

  EXPECT_GE(stats.hot_swaps, 1u)
      << "reload poll missed every same-size rewrite of the policy snapshot";
}

TEST(ServeDaemon, RestoresPriorSignalHandlersOnExit) {
  serve::DaemonOptions options = daemon_fixture("signals");
  options.reload_ms = 0;
  options.duration_s = 0.2;

  ASSERT_NE(std::signal(SIGINT, &sentinel_handler), SIG_ERR);
  ASSERT_NE(std::signal(SIGTERM, &sentinel_handler), SIG_ERR);

  // Twice: the first run must not clobber what the second run restores.
  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(serve::run_daemon(options), 0);
    void (*after_int)(int) = std::signal(SIGINT, &sentinel_handler);
    void (*after_term)(int) = std::signal(SIGTERM, &sentinel_handler);
    EXPECT_EQ(after_int, &sentinel_handler) << "round " << round;
    EXPECT_EQ(after_term, &sentinel_handler) << "round " << round;
  }

  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
}
