// Optimizers must drive a small regression problem to low loss; KFAC must
// additionally respect its trust region and beat plain SGD per-step on the
// same budget (that's the point of the natural gradient).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/kfac.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace dosc::nn {
namespace {

/// Tiny regression task: learn y = tanh-net(x) to match targets produced by
/// a fixed teacher network. Returns the final MSE after `steps` updates.
double train_regression(Optimizer& opt, Kfac* kfac, std::size_t steps,
                        std::uint64_t seed = 1) {
  util::Rng rng(seed);
  Mlp teacher({3, 8, 2}, Activation::kTanh, Activation::kLinear, 77, 1.0);
  Mlp student({3, 8, 2}, Activation::kTanh, Activation::kLinear, seed, 0.5);

  const std::size_t batch = 32;
  const double base_lr = opt.learning_rate();
  double mse = 0.0;
  for (std::size_t step = 0; step < steps; ++step) {
    // Linear learning-rate decay, as the trainers use in practice (and as
    // the ACKTR paper prescribes); keeps late-stage natural-gradient steps
    // from oscillating around the optimum.
    opt.set_learning_rate(base_lr *
                          std::max(0.05, 1.0 - static_cast<double>(step) /
                                                   static_cast<double>(steps)));
    Matrix x(batch, 3);
    for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal(0.0, 1.0);
    const Matrix target = teacher.predict(x);
    student.zero_grad();
    const Matrix y = student.forward(x);
    Matrix grad(batch, 2);
    mse = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      const double err = y.data()[i] - target.data()[i];
      mse += err * err / static_cast<double>(y.size());
      grad.data()[i] = 2.0 * err / static_cast<double>(y.size());
    }
    student.backward(grad);
    if (kfac != nullptr) kfac->update_factors(student);
    opt.step(student);
  }
  return mse;
}

TEST(Sgd, ConvergesOnRegression) {
  Sgd opt(0.05, 0.9);
  EXPECT_LT(train_regression(opt, nullptr, 600), 0.03);
}

TEST(RmsProp, ConvergesOnRegression) {
  RmsProp opt(0.005);
  EXPECT_LT(train_regression(opt, nullptr, 600), 0.03);
}

TEST(Adam, ConvergesOnRegression) {
  Adam opt(0.01);
  EXPECT_LT(train_regression(opt, nullptr, 600), 0.03);
}

TEST(Kfac, ConvergesOnRegression) {
  KfacConfig config;
  config.learning_rate = 0.2;
  config.kl_clip = 0.01;
  Kfac opt(config);
  EXPECT_LT(train_regression(opt, &opt, 500), 0.02);
}

TEST(Kfac, BeatsSgdPerStepOnSmallBudget) {
  KfacConfig config;
  config.learning_rate = 0.2;
  config.kl_clip = 0.01;
  Kfac kfac(config);
  const double kfac_loss = train_regression(kfac, &kfac, 60, 2);
  Sgd sgd(0.05);
  const double sgd_loss = train_regression(sgd, nullptr, 60, 2);
  EXPECT_LT(kfac_loss, sgd_loss);
}

TEST(Kfac, StepWithoutFactorsThrows) {
  Kfac opt;
  Mlp net({2, 3, 1}, Activation::kTanh, Activation::kLinear, 1);
  EXPECT_THROW(opt.step(net), std::logic_error);
}

TEST(Kfac, UpdateFactorsRequiresForwardBackward) {
  Kfac opt;
  Mlp net({2, 3, 1}, Activation::kTanh, Activation::kLinear, 1);
  EXPECT_THROW(opt.update_factors(net), std::logic_error);
}

TEST(Kfac, TrustRegionBoundsParameterChange) {
  // With a tiny kl_clip the parameter step must be small even under a huge
  // learning rate and large gradients.
  KfacConfig config;
  config.learning_rate = 100.0;
  config.kl_clip = 1e-6;
  Kfac opt(config);

  util::Rng rng(3);
  Mlp net({3, 6, 2}, Activation::kTanh, Activation::kLinear, 5);
  Matrix x(16, 3);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal(0.0, 1.0);
  Matrix grad(16, 2);
  for (std::size_t i = 0; i < grad.size(); ++i) grad.data()[i] = rng.normal(0.0, 10.0);

  const std::vector<double> before = net.get_parameters();
  net.zero_grad();
  net.forward(x);
  net.backward(grad);
  opt.update_factors(net);
  opt.step(net);
  const std::vector<double> after = net.get_parameters();
  double change = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    change += (after[i] - before[i]) * (after[i] - before[i]);
  }
  EXPECT_LT(std::sqrt(change), 1.0);
}

TEST(Optimizer, LearningRateSetter) {
  RmsProp opt(0.1);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.1);
  opt.set_learning_rate(0.02);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.02);
}

TEST(Sgd, ZeroGradientIsNoOp) {
  Sgd opt(0.1);
  Mlp net({2, 3, 1}, Activation::kTanh, Activation::kLinear, 4);
  const std::vector<double> before = net.get_parameters();
  net.zero_grad();
  opt.step(net);
  const std::vector<double> after = net.get_parameters();
  for (std::size_t i = 0; i < before.size(); ++i) EXPECT_DOUBLE_EQ(before[i], after[i]);
}

}  // namespace
}  // namespace dosc::nn
