// Batched multi-env rollout (rl::BatchedRollout + the decision-yield
// simulator surface). The load-bearing guarantee is exactness: driving B
// episodes through fused predict_batch forwards must reproduce the
// sequential per-episode driver bit for bit — same event digests, same
// SimMetrics, same recorded trajectories, same trained parameters — at
// every batch width, because each episode keeps its own engine and RNG
// streams and predict_batch equals predict_row per row (test_mlp pins
// that). Also covers the merge_batches_into edge cases the batched async
// windows lean on: empty batches, single-contributor windows, and
// merge-order invariance around empties.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "check/corpus.hpp"
#include "check/digest.hpp"
#include "core/batched_episode.hpp"
#include "core/observation.hpp"
#include "core/trainer.hpp"
#include "net/topology_zoo.hpp"
#include "rl/batched_rollout.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "test_helpers.hpp"

namespace dosc {
namespace {

rl::ActorCritic make_policy(const sim::Scenario& scenario, std::uint64_t seed = 42) {
  rl::ActorCriticConfig config;
  config.obs_dim = core::observation_dim(scenario.network().max_degree());
  config.num_actions = scenario.network().max_degree() + 1;
  config.hidden = {16, 16};
  config.seed = seed;
  return rl::ActorCritic(config);
}

struct EpisodeFingerprint {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t generated = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t decisions = 0;
  double e2e_mean = 0.0;
};

EpisodeFingerprint fingerprint(std::uint64_t digest, std::uint64_t events,
                               const sim::SimMetrics& metrics) {
  EpisodeFingerprint fp;
  fp.digest = digest;
  fp.events = events;
  fp.generated = metrics.generated;
  fp.succeeded = metrics.succeeded;
  fp.dropped = metrics.dropped;
  fp.decisions = metrics.decisions;
  fp.e2e_mean = metrics.e2e_delay.count() > 0 ? metrics.e2e_delay.mean() : 0.0;
  return fp;
}

void expect_equal(const EpisodeFingerprint& a, const EpisodeFingerprint& b,
                  const std::string& what) {
  EXPECT_EQ(a.digest, b.digest) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.generated, b.generated) << what;
  EXPECT_EQ(a.succeeded, b.succeeded) << what;
  EXPECT_EQ(a.dropped, b.dropped) << what;
  EXPECT_EQ(a.decisions, b.decisions) << what;
  EXPECT_EQ(a.e2e_mean, b.e2e_mean) << what;  // bitwise, not approximate
}

/// Sequential reference: episode e on `scenario` under a fresh greedy
/// coordinator, seeded seed_base + e, with a per-episode event digest.
EpisodeFingerprint run_sequential_greedy(const sim::Scenario& scenario,
                                         const rl::ActorCritic& policy, std::uint64_t seed) {
  sim::Simulator sim(scenario, seed);
  core::DistributedDrlCoordinator coordinator(policy, scenario.network().max_degree());
  check::EventDigest digest;
  sim.set_audit_hook(&digest);
  const sim::SimMetrics metrics = sim.run(coordinator);
  return fingerprint(digest.digest(), digest.events(), metrics);
}

TEST(BatchedRollout, ValidatesActorShape) {
  const sim::Scenario scenario =
      sim::make_base_scenario(2, traffic::TrafficSpec::poisson(10.0), 100.0, "abilene", 200.0);
  const rl::ActorCritic policy = make_policy(scenario);
  EXPECT_THROW(rl::BatchedRollout(policy.actor(), 0), std::invalid_argument);
  EXPECT_THROW(rl::BatchedRollout(policy.actor(), policy.config().obs_dim + 1),
               std::invalid_argument);
}

TEST(BatchedRollout, GreedyEpisodesBitIdenticalAcrossTopologiesAndWidths) {
  // The tentpole exactness gate: all four Table-I topologies plus the
  // fat-tree/WAN corpus entries, at B in {1, 4, 16}. Every batched episode
  // must match its sequential twin digest-for-digest; B = 1 additionally
  // must take the GEMV path on every round.
  std::vector<std::string> scenarios = net::topology_names();
  scenarios.push_back("corpus:ft_k4_steady");
  scenarios.push_back("corpus:wan_100_steady");
  for (const std::string& name : scenarios) {
    const bool corpus = name.rfind("corpus:", 0) == 0;
    const sim::Scenario scenario =
        corpus ? check::CorpusGenerator::make(name.substr(7)).with_end_time(150.0)
               : sim::make_base_scenario(2, traffic::TrafficSpec::poisson(10.0), 100.0, name,
                                         300.0);
    const rl::ActorCritic policy = make_policy(scenario);
    const std::size_t obs_dim = policy.config().obs_dim;
    for (const std::size_t width : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      std::vector<EpisodeFingerprint> expected;
      for (std::size_t e = 0; e < width; ++e) {
        expected.push_back(run_sequential_greedy(scenario, policy, 9000 + e));
      }

      std::vector<std::unique_ptr<core::DistributedDrlCoordinator>> coordinators;
      std::vector<std::unique_ptr<core::YieldingEpisode>> episodes;
      std::vector<check::EventDigest> digests(width);
      std::vector<rl::BatchedEnv*> envs;
      for (std::size_t e = 0; e < width; ++e) {
        coordinators.push_back(std::make_unique<core::DistributedDrlCoordinator>(
            policy, scenario.network().max_degree()));
        episodes.push_back(std::make_unique<core::YieldingEpisode>(
            scenario, 9000 + e, *coordinators.back(), *coordinators.back()));
        episodes.back()->simulator().set_audit_hook(&digests[e]);
        envs.push_back(episodes.back().get());
      }
      rl::BatchedRollout driver(policy.actor(), obs_dim);
      const rl::BatchedRolloutStats stats = driver.run(envs);
      EXPECT_GT(stats.decisions, 0u) << name;
      EXPECT_LE(stats.max_rows, width) << name;
      if (width == 1) {
        // Single env: every round is a single row and must take the GEMV
        // (predict_row) path — the exact sequential fast path.
        EXPECT_EQ(stats.gemv_rounds, stats.rounds) << name;
        EXPECT_EQ(stats.max_rows, 1u) << name;
      }
      for (std::size_t e = 0; e < width; ++e) {
        const sim::SimMetrics metrics = episodes[e]->finish();
        expect_equal(fingerprint(digests[e].digest(), digests[e].events(), metrics),
                     expected[e],
                     name + " B=" + std::to_string(width) + " episode " + std::to_string(e));
      }
    }
  }
}

TEST(BatchedRollout, StochasticTrainingEpisodesMatchSequentialBitForBit) {
  // Training flavor: sampled actions consume each env's own Rng stream and
  // land in its own TrajectoryBuffer. The batched drive must reproduce the
  // sequential sim.run(env, &env) episodes exactly — digests, rewards, and
  // every drained batch row (obs, action, return, behavior logp).
  const sim::Scenario scenario =
      sim::make_base_scenario(2, traffic::TrafficSpec::poisson(10.0), 100.0, "abilene", 400.0);
  const rl::ActorCritic policy = make_policy(scenario, 7);
  const std::size_t obs_dim = policy.config().obs_dim;
  const std::size_t max_degree = scenario.network().max_degree();
  const std::size_t width = 4;

  std::vector<EpisodeFingerprint> expected;
  std::vector<rl::Batch> expected_batches;
  std::vector<double> expected_rewards;
  for (std::size_t e = 0; e < width; ++e) {
    rl::TrajectoryBuffer buffer(0.99);
    core::TrainingEnv env(policy, buffer, core::RewardConfig{}, max_degree,
                          util::Rng(100 + e), {}, /*record_behavior_logp=*/true);
    sim::Simulator sim(scenario, 500 + e);
    check::EventDigest digest;
    sim.set_audit_hook(&digest);
    const sim::SimMetrics metrics = sim.run(env, &env);
    expected.push_back(fingerprint(digest.digest(), digest.events(), metrics));
    expected_rewards.push_back(env.episode_reward());
    buffer.truncate_all();
    rl::Batch batch;
    buffer.drain_into(batch, policy, obs_dim, /*with_behavior_logp=*/true);
    expected_batches.push_back(std::move(batch));
  }

  std::vector<std::unique_ptr<rl::TrajectoryBuffer>> buffers;
  std::vector<std::unique_ptr<core::TrainingEnv>> train_envs;
  std::vector<std::unique_ptr<core::YieldingEpisode>> episodes;
  std::vector<check::EventDigest> digests(width);
  std::vector<rl::BatchedEnv*> envs;
  for (std::size_t e = 0; e < width; ++e) {
    buffers.push_back(std::make_unique<rl::TrajectoryBuffer>(0.99));
    train_envs.push_back(std::make_unique<core::TrainingEnv>(
        policy, *buffers.back(), core::RewardConfig{}, max_degree, util::Rng(100 + e),
        core::ObservationMask{}, /*record_behavior_logp=*/true));
    episodes.push_back(std::make_unique<core::YieldingEpisode>(
        scenario, 500 + e, *train_envs.back(), *train_envs.back(), train_envs.back().get()));
    episodes.back()->simulator().set_audit_hook(&digests[e]);
    envs.push_back(episodes.back().get());
  }
  rl::BatchedRollout driver(policy.actor(), obs_dim);
  driver.run(envs);
  for (std::size_t e = 0; e < width; ++e) {
    const sim::SimMetrics metrics = episodes[e]->finish();
    expect_equal(fingerprint(digests[e].digest(), digests[e].events(), metrics), expected[e],
                 "training episode " + std::to_string(e));
    EXPECT_EQ(train_envs[e]->episode_reward(), expected_rewards[e]);
    buffers[e]->truncate_all();
    rl::Batch batch;
    buffers[e]->drain_into(batch, policy, obs_dim, /*with_behavior_logp=*/true);
    const rl::Batch& want = expected_batches[e];
    ASSERT_EQ(batch.size(), want.size()) << "episode " << e;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(batch.actions[i], want.actions[i]) << "episode " << e << " row " << i;
      ASSERT_EQ(batch.returns[i], want.returns[i]) << "episode " << e << " row " << i;
      ASSERT_EQ(batch.behavior_logp[i], want.behavior_logp[i])
          << "episode " << e << " row " << i;
      for (std::size_t d = 0; d < obs_dim; ++d) {
        ASSERT_EQ(batch.obs(i, d), want.obs(i, d)) << "episode " << e << " row " << i;
      }
    }
  }
}

TEST(BatchedRollout, StreamingRunBitIdenticalToSequentialAtAnyWidth) {
  // The streaming flavor pulls replacement episodes as others drain, so the
  // refill interleaving differs from the fixed-set run(); per-episode results
  // must still match the sequential driver exactly, at every nominal width.
  const sim::Scenario scenario =
      sim::make_base_scenario(2, traffic::TrafficSpec::poisson(10.0), 100.0, "abilene", 250.0);
  const rl::ActorCritic policy = make_policy(scenario);
  const std::size_t obs_dim = policy.config().obs_dim;
  const std::size_t episodes_total = 10;

  std::vector<EpisodeFingerprint> expected;
  for (std::size_t e = 0; e < episodes_total; ++e) {
    expected.push_back(run_sequential_greedy(scenario, policy, 6200 + e));
  }

  for (const std::size_t width : {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
    std::vector<std::unique_ptr<core::DistributedDrlCoordinator>> coordinators;
    std::vector<std::unique_ptr<core::YieldingEpisode>> episodes;
    std::vector<check::EventDigest> digests(episodes_total);
    std::size_t issued = 0;
    const rl::BatchedEnvSource source = [&]() -> rl::BatchedEnv* {
      if (issued >= episodes_total) return nullptr;
      const std::size_t e = issued++;
      coordinators.push_back(std::make_unique<core::DistributedDrlCoordinator>(
          policy, scenario.network().max_degree()));
      episodes.push_back(std::make_unique<core::YieldingEpisode>(
          scenario, 6200 + e, *coordinators.back(), *coordinators.back()));
      episodes.back()->simulator().set_audit_hook(&digests[e]);
      return episodes.back().get();
    };
    rl::BatchedRollout driver(policy.actor(), obs_dim);
    const rl::BatchedRolloutStats stats = driver.run(width, source);
    EXPECT_EQ(issued, episodes_total) << "width " << width;
    EXPECT_GT(stats.decisions, 0u) << "width " << width;
    EXPECT_LE(stats.max_rows, std::max<std::size_t>(width, 1)) << "width " << width;
    EXPECT_LE(stats.gemv_rows, stats.decisions) << "width " << width;
    if (width == 1) {
      // Nominal width 1 must reduce to the sequential fast path everywhere:
      // every round is one row, and every row goes through GEMV.
      EXPECT_EQ(stats.gemv_rounds, stats.rounds);
      EXPECT_EQ(stats.gemv_rows, stats.decisions);
    }
    for (std::size_t e = 0; e < episodes_total; ++e) {
      const sim::SimMetrics metrics = episodes[e]->finish();
      expect_equal(fingerprint(digests[e].digest(), digests[e].events(), metrics), expected[e],
                   "stream width " + std::to_string(width) + " episode " + std::to_string(e));
    }
  }
}

TEST(BatchedRollout, StreamingRunWithExhaustedSourceIsANoOp) {
  const sim::Scenario scenario =
      sim::make_base_scenario(2, traffic::TrafficSpec::poisson(10.0), 100.0, "abilene", 200.0);
  const rl::ActorCritic policy = make_policy(scenario);
  rl::BatchedRollout driver(policy.actor(), policy.config().obs_dim);
  std::size_t calls = 0;
  const rl::BatchedEnvSource empty = [&]() -> rl::BatchedEnv* {
    ++calls;
    return nullptr;
  };
  const rl::BatchedRolloutStats stats = driver.run(8, empty);
  EXPECT_EQ(calls, 1u);  // nullptr means exhausted: no further pulls
  EXPECT_EQ(stats.decisions, 0u);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.max_rows, 0u);
}

TEST(BatchedRollout, GemvRowAccountingSplitsAtTheGemmTile) {
  // With 6 envs in flight the first rounds have rows = 6: 4 rows through the
  // fused GEMM tile, 2 through the per-row GEMV drain. The stats must
  // account every row to exactly one path.
  const sim::Scenario scenario =
      sim::make_base_scenario(2, traffic::TrafficSpec::poisson(10.0), 100.0, "abilene", 200.0);
  const rl::ActorCritic policy = make_policy(scenario);
  std::vector<std::unique_ptr<core::DistributedDrlCoordinator>> coordinators;
  std::vector<std::unique_ptr<core::YieldingEpisode>> episodes;
  std::vector<rl::BatchedEnv*> envs;
  for (std::size_t e = 0; e < 6; ++e) {
    coordinators.push_back(std::make_unique<core::DistributedDrlCoordinator>(
        policy, scenario.network().max_degree()));
    episodes.push_back(std::make_unique<core::YieldingEpisode>(
        scenario, 70 + e, *coordinators.back(), *coordinators.back()));
    envs.push_back(episodes.back().get());
  }
  rl::BatchedRollout driver(policy.actor(), policy.config().obs_dim);
  const rl::BatchedRolloutStats stats = driver.run(envs);
  for (auto& ep : episodes) ep->finish();
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_EQ(stats.max_rows, 6u);
  // Rows not in a full multiple-of-4 prefix went through GEMV; with widths
  // decaying 6 -> 1 there must be both GEMM-served and GEMV-served rows.
  EXPECT_GT(stats.gemv_rows, 0u);
  EXPECT_LT(stats.gemv_rows, stats.decisions);
  EXPECT_GT(stats.gemv_rounds, 0u);  // rows < 4 tail rounds exist
  EXPECT_LT(stats.gemv_rounds, stats.rounds);
}

TEST(BatchedRollout, RecordsAchievedBatchWidthHistogram) {
  const sim::Scenario scenario =
      sim::make_base_scenario(2, traffic::TrafficSpec::poisson(10.0), 100.0, "abilene", 200.0);
  const rl::ActorCritic policy = make_policy(scenario);
  telemetry::set_enabled(true);
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::global();
  const std::uint64_t before = registry.histogram("rl.rollout.batch_rows").count();

  std::vector<std::unique_ptr<core::DistributedDrlCoordinator>> coordinators;
  std::vector<std::unique_ptr<core::YieldingEpisode>> episodes;
  std::vector<rl::BatchedEnv*> envs;
  for (std::size_t e = 0; e < 3; ++e) {
    coordinators.push_back(std::make_unique<core::DistributedDrlCoordinator>(
        policy, scenario.network().max_degree()));
    episodes.push_back(std::make_unique<core::YieldingEpisode>(
        scenario, 40 + e, *coordinators.back(), *coordinators.back()));
    envs.push_back(episodes.back().get());
  }
  rl::BatchedRollout driver(policy.actor(), policy.config().obs_dim);
  const rl::BatchedRolloutStats stats = driver.run(envs);
  telemetry::set_enabled(false);

  const std::uint64_t after = registry.histogram("rl.rollout.batch_rows").count();
  EXPECT_EQ(after - before, stats.rounds);
  EXPECT_GT(stats.rounds, 0u);
}

TEST(EvaluatePolicy, BatchedEvalBitIdenticalAtEveryWidthAndParallelism) {
  const sim::Scenario scenario =
      sim::make_base_scenario(2, traffic::TrafficSpec::poisson(10.0), 100.0, "abilene", 300.0);
  const rl::ActorCritic policy = make_policy(scenario);
  const core::RewardConfig reward;
  const std::size_t episodes = 6;
  const core::EvalResult base = core::evaluate_policy(scenario, policy, reward, episodes,
                                                      300.0, /*seed_base=*/9100);
  for (const std::size_t batch : {std::size_t{2}, std::size_t{4}, std::size_t{16}}) {
    for (const std::size_t parallel : {std::size_t{1}, std::size_t{2}}) {
      const core::EvalResult got =
          core::evaluate_policy(scenario, policy, reward, episodes, 300.0, 9100, {},
                                parallel, batch);
      EXPECT_EQ(got.success_ratio, base.success_ratio) << "B=" << batch << " p=" << parallel;
      EXPECT_EQ(got.mean_reward, base.mean_reward) << "B=" << batch << " p=" << parallel;
      EXPECT_EQ(got.mean_e2e_delay, base.mean_e2e_delay) << "B=" << batch << " p=" << parallel;
    }
  }
}

core::TrainingConfig tiny_training_config() {
  core::TrainingConfig config;
  config.hidden = {8, 8};
  config.num_seeds = 1;
  config.parallel_envs = 3;
  config.iterations = 4;
  config.train_episode_time = 300.0;
  config.eval_episodes = 1;
  config.eval_episode_time = 300.0;
  return config;
}

sim::Scenario tiny_training_scenario() {
  test::TinyScenarioOptions options;
  options.ingress = {0};
  options.egress = 2;
  options.end_time = 300.0;
  options.interarrival = 10.0;
  return test::tiny_scenario(test::line3(), test::one_component_catalog(), options);
}

TEST(Trainer, BatchedSyncRolloutBitIdenticalToThreadedWorkers) {
  // The sync trainer's batched mode drives the l envs through one fused
  // driver on the calling thread; each env keeps its own rng/buffer and the
  // forward is deterministic at any thread count, so the parameter
  // trajectory must match the threaded per-env path bit for bit.
  const sim::Scenario scenario = tiny_training_scenario();
  const core::TrainingConfig threaded = tiny_training_config();
  core::TrainingConfig batched = tiny_training_config();
  batched.batched_rollout = true;

  const core::TrainedPolicy a = core::train_distributed_policy(scenario, threaded);
  const core::TrainedPolicy b = core::train_distributed_policy(scenario, batched);
  ASSERT_EQ(a.parameters.size(), b.parameters.size());
  for (std::size_t i = 0; i < a.parameters.size(); ++i) {
    ASSERT_EQ(a.parameters[i], b.parameters[i]) << "parameter " << i << " diverged";
  }
  EXPECT_DOUBLE_EQ(a.eval_success_ratio, b.eval_success_ratio);
  EXPECT_DOUBLE_EQ(a.eval_reward, b.eval_reward);
}

TEST(AsyncTrainer, BatchedWorkerLockstepBitIdenticalToSequentialWorker) {
  // The async acceptance anchor extended to batched workers: in lockstep
  // (1 worker, staleness 0) a whole update window's tickets pass the gate
  // together, so the batched worker claims exactly one window per round and
  // the window composition — and the trained parameters — must match the
  // one-episode-at-a-time worker bit for bit.
  const sim::Scenario scenario = tiny_training_scenario();
  core::TrainingConfig sequential = tiny_training_config();
  sequential.async.enabled = true;
  sequential.async.num_workers = 1;
  sequential.async.max_staleness = 0;
  core::TrainingConfig batched = sequential;
  batched.async.envs_per_worker = 4;

  const core::TrainedPolicy a = core::train_distributed_policy(scenario, sequential);
  const core::TrainedPolicy b = core::train_distributed_policy(scenario, batched);
  ASSERT_EQ(a.parameters.size(), b.parameters.size());
  for (std::size_t i = 0; i < a.parameters.size(); ++i) {
    ASSERT_EQ(a.parameters[i], b.parameters[i]) << "parameter " << i << " diverged";
  }
  EXPECT_DOUBLE_EQ(a.eval_success_ratio, b.eval_success_ratio);
}

// ---- merge_batches_into edge cases (the batched windows' merge path) ----

rl::ActorCritic tiny_net() {
  rl::ActorCriticConfig config;
  config.obs_dim = 3;
  config.num_actions = 2;
  config.hidden = {4};
  config.seed = 1;
  return rl::ActorCritic(config);
}

rl::Batch tiny_batch(const rl::ActorCritic& net, std::uint64_t key, double reward,
                     int steps) {
  rl::TrajectoryBuffer buffer(1.0);
  const std::vector<double> obs{0.1 * static_cast<double>(key), 0.2, 0.3};
  for (int s = 0; s < steps; ++s) {
    buffer.record_decision(key, obs, s % 2, -0.5);
    buffer.record_reward(key, reward);
  }
  buffer.finish(key);
  rl::Batch batch;
  buffer.drain_into(batch, net, 3, /*with_behavior_logp=*/true);
  return batch;
}

TEST(MergeBatches, AllZeroLengthBatchesMergeToEmpty) {
  const rl::ActorCritic net = tiny_net();
  const std::vector<rl::Batch> batches(4);  // all empty
  rl::Batch merged;
  merged = tiny_batch(net, 9, 1.0, 2);  // pre-populated: must be cleared
  util::Rng rng(1);
  rl::merge_batches_into(merged, batches, 3, 100, rng);
  EXPECT_EQ(merged.size(), 0u);
}

TEST(MergeBatches, SingleEnvContributingAllRowsIsVerbatim) {
  // One non-empty batch among empties, under the cap: the merge must hand
  // back that batch's rows verbatim, wherever it sits in the window.
  const rl::ActorCritic net = tiny_net();
  const rl::Batch source = tiny_batch(net, 3, 2.0, 5);
  for (std::size_t position = 0; position < 3; ++position) {
    std::vector<rl::Batch> batches(3);
    batches[position] = tiny_batch(net, 3, 2.0, 5);
    rl::Batch merged;
    util::Rng rng(7);
    rl::merge_batches_into(merged, batches, 3, 100, rng);
    ASSERT_EQ(merged.size(), source.size()) << "position " << position;
    for (std::size_t i = 0; i < source.size(); ++i) {
      ASSERT_EQ(merged.actions[i], source.actions[i]);
      ASSERT_EQ(merged.returns[i], source.returns[i]);
      ASSERT_EQ(merged.behavior_logp[i], source.behavior_logp[i]);
      for (std::size_t d = 0; d < 3; ++d) ASSERT_EQ(merged.obs(i, d), source.obs(i, d));
    }
  }
}

TEST(MergeBatches, EmptyBatchesDoNotPerturbTheMerge) {
  // Merge-order invariance around empties: inserting zero-length batches at
  // any position changes nothing — neither the concatenation below the cap
  // nor the reservoir subsample above it (empties consume no rng draws).
  const rl::ActorCritic net = tiny_net();
  const auto merge = [&](const std::vector<rl::Batch>& batches, std::size_t cap) {
    rl::Batch merged;
    util::Rng rng(123);
    rl::merge_batches_into(merged, batches, 3, cap, rng);
    return merged;
  };
  const auto expect_same = [](const rl::Batch& a, const rl::Batch& b) {
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.behavior_logp.size(), b.behavior_logp.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.actions[i], b.actions[i]);
      ASSERT_EQ(a.returns[i], b.returns[i]);
      for (std::size_t d = 0; d < 3; ++d) ASSERT_EQ(a.obs(i, d), b.obs(i, d));
    }
  };

  std::vector<rl::Batch> dense;
  dense.push_back(tiny_batch(net, 1, 1.0, 4));
  dense.push_back(tiny_batch(net, 2, -1.0, 6));
  std::vector<rl::Batch> sparse;
  sparse.emplace_back();  // leading empty
  sparse.push_back(tiny_batch(net, 1, 1.0, 4));
  sparse.emplace_back();  // middle empty
  sparse.push_back(tiny_batch(net, 2, -1.0, 6));
  sparse.emplace_back();  // trailing empty

  expect_same(merge(dense, 100), merge(sparse, 100));  // below the cap
  expect_same(merge(dense, 5), merge(sparse, 5));      // reservoir path
}

}  // namespace
}  // namespace dosc
